/**
 * @file
 * Tutorial: running the full CRISP flow on your own kernel.
 *
 * The library's public API is small: assemble a Program with the
 * Assembler DSL, execute it with the Interpreter to get a Trace,
 * then either drive the individual analysis stages (profileTrace,
 * selectDelinquentLoads, SliceExtractor, applyCriticalPrefix) or let
 * CrispPipeline orchestrate them. This example builds a B-tree-like
 * search kernel from scratch and measures CRISP's effect on it.
 */

#include <cstdio>
#include <memory>

#include "core/pipeline.h"
#include "sim/driver.h"
#include "vm/assembler.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

/**
 * A three-level index search: two cached inner-node probes followed
 * by one large random leaf probe, with comparison work between.
 * Train and Ref differ only in data (the §5.1 requirement).
 */
Program
buildBtreeSearch(InputSet input)
{
    const bool train = input == InputSet::Train;
    Rng rng(train ? 0x1111 : 0x2222);
    Assembler a;

    const RegId r_inner = 61, r_leaf = 60, r_n = 59, r_cnt = 58;
    const RegId r_gp = 57;
    const RegId r_key = 10, r_t = 11, r_u = 12, r_v = 13;
    const RegId r_w0 = 20;

    const uint64_t leaf_base = kHeapBase + (1ULL << 26);
    // Inner nodes: 32 KiB, cache-resident.
    for (uint32_t i = 0; i < 4096; ++i)
        a.poke(kHeapBase + i * 8, rng.next());
    // Leaves: sparse 8 MiB region with a dense hot window.
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(leaf_base + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(leaf_base + rng.next(1u << 20) * 8, rng.next());
    a.poke(kGlobalBase, train ? 30000 : 90000);
    a.poke(kGlobalBase + 8, rng.next() | 1);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_inner, kHeapBase);
    a.movi(r_leaf, leaf_base);
    a.ld(r_n, r_gp, 0);
    a.ld(r_key, r_gp, 8);
    a.movi(r_cnt, 0);

    auto loop = a.label();
    a.bind(loop);
    // Key chained through the previous leaf value (serial probes).
    a.xor_(r_key, r_key, r_cnt);
    a.muli(r_key, r_key, 0x9e3779b1);
    // Two inner-node probes (cache-resident, cheap).
    a.andi(r_t, r_key, 0x7ff8);
    a.ldx(r_u, r_inner, r_t);
    a.xor_(r_t, r_u, r_key);
    a.andi(r_t, r_t, 0x7ff8);
    a.ldx(r_u, r_inner, r_t);
    // Leaf probe: hot/cold mix, the delinquent load.
    a.xor_(r_t, r_u, r_key);
    a.shri(r_t, r_t, 5);
    emitHotColdOffset(a, r_t, r_t, 0xffff, (1 << 23) - 1, r_u,
                      r_v);
    a.ldx(r_key, r_leaf, r_t); // next key depends on this leaf
    // Comparison work on the fetched leaf (parallel, deferrable).
    for (int k = 0; k < 8; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_key, k * 17 + 3);
        a.andi(rk, rk, 0x7f8);
        a.ldx(r_v, r_inner, rk);
        a.fmul(r_v, r_v, r_key);
        a.stx(r_inner, rk, r_v);
    }
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("btree_search");
}

} // namespace

int
main()
{
    // Register-free usage: wrap the builder in a WorkloadInfo so the
    // pipeline and driver helpers can use it like a built-in proxy.
    WorkloadInfo wl{"btree_search",
                    "custom example: 3-level index search",
                    &buildBtreeSearch};

    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{150'000, 300'000};

    std::printf("Custom workload through the CRISP pipeline\n\n");

    // Step-by-step (what CrispPipeline does internally):
    CrispPipeline pipe(wl, opts, cfg, sizes.trainOps, sizes.refOps);
    const CrispAnalysis &a = pipe.analysis();
    std::printf("1. profile : %llu ops, %llu LLC misses\n",
                static_cast<unsigned long long>(a.profile.totalOps),
                static_cast<unsigned long long>(a.profile.totalLlcMisses));
    std::printf("2. select  : %zu delinquent loads, %zu branches\n",
                a.delinquentLoads.size(),
                a.criticalBranches.size());
    std::printf("3. slice   : avg %.1f statics per load slice\n",
                a.avgLoadSliceSize);
    std::printf("4. tag     : %zu statics, %.0f%% of dynamic"
                " instructions\n\n",
                a.taggedStatics.size(),
                a.dynamicCriticalRatio * 100.0);

    // And the evaluation (baseline vs CRISP vs IBDA).
    WorkloadEval ev =
        evaluateWorkload(wl, cfg, opts, sizes, {"1K"});
    std::printf("baseline IPC : %.3f\n", ev.ipcBaseline);
    std::printf("CRISP IPC    : %.3f  (%+.1f%%)\n", ev.ipcCrisp,
                (ev.crispSpeedup() - 1.0) * 100.0);
    std::printf("IBDA-1K IPC  : %.3f  (%+.1f%%)\n",
                ev.ipcIbda["1K"],
                (ev.ibdaSpeedup("1K") - 1.0) * 100.0);
    return 0;
}
