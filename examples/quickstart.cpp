/**
 * @file
 * Quickstart: the full CRISP flow on the paper's motivating
 * pointer-chase microbenchmark (Figures 1-3).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/pipeline.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "workloads/workload.h"

using namespace crisp;

int
main()
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    if (!wl) {
        std::fprintf(stderr, "workload registry broken\n");
        return 1;
    }

    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{150'000, 200'000};

    std::printf("CRISP quickstart on '%s'\n", wl->name.c_str());
    std::printf("machine: %s\n\n", cfg.describe().c_str());

    WorkloadEval eval =
        evaluateWorkload(*wl, cfg, opts, sizes, {"1K"});

    std::printf("profiling found %zu delinquent loads, %zu critical"
                " branches\n",
                eval.analysis.delinquentLoads.size(),
                eval.analysis.criticalBranches.size());
    std::printf("tagged %zu static instructions "
                "(dynamic critical ratio %s)\n",
                eval.analysis.taggedStatics.size(),
                percent(eval.analysis.dynamicCriticalRatio).c_str());
    std::printf("avg load slice size: %.1f static instructions\n\n",
                eval.analysis.avgLoadSliceSize);

    std::printf("baseline OOO IPC : %.3f\n", eval.ipcBaseline);
    std::printf("CRISP IPC        : %.3f  (%+.1f%%)\n",
                eval.ipcCrisp,
                (eval.crispSpeedup() - 1.0) * 100.0);
    std::printf("IBDA(1K IST) IPC : %.3f  (%+.1f%%)\n",
                eval.ipcIbda["1K"],
                (eval.ibdaSpeedup("1K") - 1.0) * 100.0);

    std::printf("\nROB-head stall cycles: baseline %llu -> CRISP"
                " %llu\n",
                static_cast<unsigned long long>(eval.baseStats.robHeadStallCycles),
                static_cast<unsigned long long>(eval.crispStats.robHeadStallCycles));
    std::printf("branch mispredicts (ref run): %llu\n",
                static_cast<unsigned long long>(eval.baseStats.frontend.mispredicts()));
    return 0;
}
