/**
 * @file
 * Per-workload analysis report: what the profiler saw, what the
 * delinquency/branch heuristics selected, what got tagged, and how
 * the baseline/CRISP runs compare. A debugging and inspection
 * companion to the figure benches.
 *
 * Usage: workload_report [workload ...]
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "sim/driver.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

void
reportWorkload(const WorkloadInfo &wl, const SimConfig &cfg,
               const CrispOptions &opts, const EvalSizes &sizes)
{
    std::printf("=== %s: %s\n", wl.name.c_str(),
                wl.description.c_str());

    CrispPipeline pipe(wl, opts, cfg, sizes.trainOps, sizes.refOps);
    const CrispAnalysis &a = pipe.analysis();
    const ProfileResult &p = a.profile;

    std::printf("  profile: %llu ops, %llu loads, %llu LLC misses,"
                " dram lat %.0f\n",
                static_cast<unsigned long long>(p.totalOps),
                static_cast<unsigned long long>(p.totalLoads),
                static_cast<unsigned long long>(p.totalLlcMisses),
                p.avgDramLatency);

    // Top missing loads.
    std::vector<std::pair<uint64_t, uint32_t>> loads;
    for (const auto &[sidx, lp] : p.loads)
        if (lp.llcMisses)
            loads.emplace_back(lp.llcMisses, sidx);
    std::sort(loads.rbegin(), loads.rend());
    for (size_t k = 0; k < loads.size() && k < 4; ++k) {
        const auto &lp = p.loads.at(loads[k].second);
        std::printf("  load @%u: exec %llu, missRatio %.2f, mlp %.1f,"
                    " stride %.2f, share %.3f\n",
                    loads[k].second, static_cast<unsigned long long>(lp.exec),
                    lp.missRatio(), lp.avgMlp(), lp.strideability(),
                    p.totalLlcMisses
                        ? double(lp.llcMisses) /
                              double(p.totalLlcMisses)
                        : 0.0);
    }
    // Top mispredicting branches.
    std::vector<std::pair<uint64_t, uint32_t>> brs;
    for (const auto &[sidx, bp] : p.branches)
        if (bp.mispredicts)
            brs.emplace_back(bp.mispredicts, sidx);
    std::sort(brs.rbegin(), brs.rend());
    for (size_t k = 0; k < brs.size() && k < 3; ++k) {
        const auto &bp = p.branches.at(brs[k].second);
        std::printf("  branch @%u: exec %llu, mispred %.2f\n",
                    brs[k].second, static_cast<unsigned long long>(bp.exec),
                    bp.mispredictRatio());
    }

    std::printf("  selected: %zu delinquent loads, %zu branches;"
                " tagged %zu statics, dyn ratio %.2f\n",
                a.delinquentLoads.size(), a.criticalBranches.size(),
                a.taggedStatics.size(), a.dynamicCriticalRatio);
    for (const auto &s : a.loadSlices)
        std::printf("    load slice @%u: full %zu -> critical %zu\n",
                    s.rootSidx, s.fullSlice.size(),
                    s.criticalSlice.size());
    for (const auto &s : a.branchSlices)
        std::printf("    br slice @%u: full %zu -> critical %zu\n",
                    s.rootSidx, s.fullSlice.size(),
                    s.criticalSlice.size());

    Trace base = pipe.refTrace(false);
    CoreStats sb = runCore(base, cfg);
    Trace tagged = pipe.refTrace(true);
    SimConfig ccfg = cfg;
    ccfg.scheduler = SchedulerPolicy::CrispPriority;
    CoreStats sc = runCore(tagged, ccfg);

    std::printf("  base : IPC %.3f, headStall %llu (load %llu),"
                " mispred %llu, brStall %llu, icStall %llu\n",
                sb.ipc(),
                static_cast<unsigned long long>(sb.robHeadStallCycles),
                static_cast<unsigned long long>(sb.robHeadLoadStallCycles),
                static_cast<unsigned long long>(sb.frontend.mispredicts()),
                static_cast<unsigned long long>(sb.frontend.branchStallCycles),
                static_cast<unsigned long long>(sb.frontend.icacheStallCycles));
    {
        // Build from the sorted rows so ties in wait sum break by
        // static id, not by unordered_map iteration order.
        std::vector<std::pair<uint64_t, uint32_t>> waits;
        for (const auto &row : sb.sortedIssueWaits())
            waits.emplace_back(row[1], uint32_t(row[0]));
        std::stable_sort(waits.begin(), waits.end(),
                         [](const auto &x, const auto &y) {
                             return x.first > y.first;
                         });
        for (size_t k = 0; k < waits.size() && k < 5; ++k) {
            uint32_t sidx = waits[k].second;
            auto wb = sb.issueWaitByStatic[sidx];
            auto wcIt = sc.issueWaitByStatic.find(sidx);
            double avg_b = wb.second ? double(wb.first) / wb.second : 0;
            double avg_c =
                (wcIt != sc.issueWaitByStatic.end() &&
                 wcIt->second.second)
                    ? double(wcIt->second.first) / wcIt->second.second
                    : 0;
            std::printf("  wait @%u: base sum %llu (avg %.1f) ->"
                        " crisp avg %.1f\n",
                        sidx, static_cast<unsigned long long>(wb.first), avg_b,
                        avg_c);
        }
    }
    for (uint32_t root : a.delinquentLoads) {
        auto itb = sb.issueWaitByStatic.find(root);
        auto itc = sc.issueWaitByStatic.find(root);
        double wb = (itb != sb.issueWaitByStatic.end() &&
                     itb->second.second)
                        ? double(itb->second.first) /
                              double(itb->second.second)
                        : 0.0;
        double wc = (itc != sc.issueWaitByStatic.end() &&
                     itc->second.second)
                        ? double(itc->second.first) /
                              double(itc->second.second)
                        : 0.0;
        std::printf("  root @%u avg issue wait: base %.1f ->"
                    " crisp %.1f cycles\n",
                    root, wb, wc);
    }
    std::printf("  crisp: IPC %.3f (%+.1f%%), headStall %llu,"
                " prio-issued %llu of %llu\n\n",
                sc.ipc(), (sc.ipc() / sb.ipc() - 1.0) * 100.0,
                static_cast<unsigned long long>(sc.robHeadStallCycles),
                static_cast<unsigned long long>(sc.issuedPrioritized),
                static_cast<unsigned long long>(sc.issued));
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{200'000, 400'000};

    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = workloadNames();

    for (const auto &name : names) {
        const WorkloadInfo *wl = findWorkload(name);
        if (!wl) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         name.c_str());
            continue;
        }
        reportWorkload(*wl, cfg, opts, sizes);
    }
    return 0;
}
