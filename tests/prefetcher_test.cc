/**
 * @file
 * Unit tests for the data prefetchers (BOP, stream, stride, GHB) and
 * the composite dispatcher.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/best_offset.h"
#include "cache/ghb_prefetcher.h"
#include "cache/prefetcher.h"
#include "cache/stream_prefetcher.h"
#include "cache/stride_prefetcher.h"

namespace crisp
{
namespace
{

std::vector<uint64_t>
feed(Prefetcher &pf, const std::vector<uint64_t> &lines,
     uint64_t pc = 0x1000, bool miss = true)
{
    std::vector<uint64_t> out;
    for (uint64_t l : lines)
        pf.observe({l, pc, miss}, out);
    return out;
}

TEST(BestOffset, LearnsConstantOffset)
{
    BestOffsetPrefetcher bop;
    std::vector<uint64_t> lines;
    for (uint64_t i = 0; i < 4000; ++i)
        lines.push_back(1000 + i * 3); // offset-3 stream
    feed(bop, lines);
    EXPECT_EQ(bop.currentOffset(), 3);
    // And it now prefetches line+3.
    std::vector<uint64_t> out;
    bop.observe({50000, 0x1000, true}, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.back(), 50003u);
}

TEST(BestOffset, TurnsOffOnRandomAccesses)
{
    BestOffsetPrefetcher bop;
    std::vector<uint64_t> lines;
    uint64_t s = 99;
    for (int i = 0; i < 30000; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        lines.push_back((s >> 20) & 0xffffff);
    }
    feed(bop, lines);
    EXPECT_EQ(bop.currentOffset(), 0); // prefetching disabled
}

TEST(Stream, DetectsAscendingRun)
{
    StreamPrefetcher sp;
    auto out = feed(sp, {100, 101, 102, 103});
    // After two confirming steps, prefetch ahead.
    ASSERT_FALSE(out.empty());
    EXPECT_TRUE(std::count(out.begin(), out.end(), 104) ||
                std::count(out.begin(), out.end(), 105));
}

TEST(Stream, DetectsDescendingRun)
{
    StreamPrefetcher sp;
    auto out = feed(sp, {200, 199, 198, 197});
    ASSERT_FALSE(out.empty());
    EXPECT_TRUE(std::count(out.begin(), out.end(), 196));
}

TEST(Stream, NoPrefetchOnDirectionFlips)
{
    StreamPrefetcher sp;
    auto out = feed(sp, {100, 101, 100, 101, 100});
    EXPECT_TRUE(out.empty());
}

TEST(Stride, LearnsPerPcStride)
{
    StridePrefetcher sp;
    std::vector<uint64_t> out;
    for (uint64_t i = 0; i < 5; ++i)
        sp.observe({1000 + i * 7, 0x1234, true}, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.back() % 7, (1000 + 4 * 7 + 7) % 7);
    // A different PC does not inherit the stride.
    std::vector<uint64_t> out2;
    sp.observe({5000, 0x9999, true}, out2);
    EXPECT_TRUE(out2.empty());
}

TEST(Stride, InterleavedPcsKeepSeparateState)
{
    StridePrefetcher sp;
    std::vector<uint64_t> out;
    for (uint64_t i = 0; i < 6; ++i) {
        sp.observe({100 + i * 2, 0x1000, true}, out);
        sp.observe({9000 + i * 5, 0x1002, true}, out);
    }
    // Both strides learned: +2 for pc1, +5 for pc2 predictions seen.
    bool saw_plus2 = false, saw_plus5 = false;
    for (size_t i = 0; i < out.size(); ++i) {
        if (out[i] == 100 + 5 * 2 + 2 || out[i] == 100 + 4 * 2 + 2)
            saw_plus2 = true;
        if (out[i] == 9000 + 5 * 5 + 5 || out[i] == 9000 + 4 * 5 + 5)
            saw_plus5 = true;
    }
    EXPECT_TRUE(saw_plus2);
    EXPECT_TRUE(saw_plus5);
}

TEST(Ghb, ReplaysDeltaPattern)
{
    GhbPrefetcher ghb;
    // Repeating delta pattern +1,+4,+1,+4...
    std::vector<uint64_t> lines;
    uint64_t a = 1000;
    for (int i = 0; i < 40; ++i) {
        lines.push_back(a);
        a += (i % 2) ? 4 : 1;
    }
    auto out = feed(ghb, lines);
    EXPECT_FALSE(out.empty());
}

TEST(Ghb, IgnoresHits)
{
    GhbPrefetcher ghb;
    auto out = feed(ghb, {1, 2, 3, 4, 5, 6, 7, 8}, 0x1000,
                    /*miss=*/false);
    EXPECT_TRUE(out.empty());
}

TEST(Composite, FansOutToAllEngines)
{
    CompositePrefetcher comp;
    comp.add(std::make_unique<StreamPrefetcher>());
    comp.add(std::make_unique<StridePrefetcher>());
    EXPECT_EQ(comp.size(), 2u);
    std::vector<uint64_t> out;
    for (uint64_t i = 0; i < 6; ++i)
        comp.observe({100 + i, 0x1000, true}, out);
    // Both engines detect the +1 stream/stride.
    EXPECT_GE(out.size(), 2u);
}

} // namespace
} // namespace crisp
