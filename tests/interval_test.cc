/**
 * @file
 * Interval time-series streamer tests.
 *
 * Two layers. Unit tests drive IntervalStreamer directly and pin the
 * windowing algebra: boundary emission on executed ticks, idle-span
 * splitting across multiple boundaries (the event engine's bulk
 * charge), the final partial window, and the record format. Engine
 * tests run full cores under both tick models and require the NDJSON
 * streams to be **bit-identical** — the same guarantee DESIGN.md §9
 * makes for end-of-run stats, extended to every window boundary — on
 * a memory-bound workload (mcf) and a compute-bound one (namd), and
 * reconcile the stream against the final CoreStats: window deltas
 * must sum exactly to the run totals, because every cycle of the run
 * belongs to exactly one window.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "sim/artifact_cache.h"
#include "sim/driver.h"
#include "telemetry/interval.h"
#include "telemetry/json.h"
#include "telemetry/pipe_tracer.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

// ---------------------------------------------------------------
// Unit tests: windowing algebra on hand-built snapshots.
// ---------------------------------------------------------------

IntervalStreamer::Snapshot
snapAt(uint64_t cycle, uint64_t retired, uint64_t issued)
{
    IntervalStreamer::Snapshot s;
    s.cycle = cycle;
    s.retired = retired;
    s.issued = issued;
    return s;
}

TEST(IntervalUnit, RejectsZeroWindow)
{
    EXPECT_THROW(IntervalStreamer(0), std::invalid_argument);
}

TEST(IntervalUnit, EmitsOnlyAtBoundaries)
{
    IntervalStreamer iv(100);
    EXPECT_EQ(iv.nextBoundary(), 100u);
    iv.onTick(snapAt(99, 10, 20));
    EXPECT_TRUE(iv.records().empty());
    iv.onTick(snapAt(100, 12, 24));
    ASSERT_EQ(iv.records().size(), 1u);
    EXPECT_EQ(iv.nextBoundary(), 200u);

    JsonValue rec;
    ASSERT_TRUE(parseJson(iv.records()[0], rec));
    EXPECT_EQ(rec.at("window").number, 0.0);
    EXPECT_EQ(rec.at("cycle").number, 100.0);
    EXPECT_EQ(rec.at("cycles").number, 100.0);
    EXPECT_EQ(rec.at("retired").number, 12.0);
    EXPECT_EQ(rec.at("issued").number, 24.0);
    EXPECT_DOUBLE_EQ(rec.at("ipc").number, 0.12);
    // Unlabelled streamer: no variant field.
    EXPECT_FALSE(rec.has("variant"));
}

TEST(IntervalUnit, SecondWindowIsADelta)
{
    IntervalStreamer iv(100, "crisp");
    iv.onTick(snapAt(100, 50, 60));
    iv.onTick(snapAt(200, 80, 95));
    ASSERT_EQ(iv.records().size(), 2u);

    JsonValue rec;
    ASSERT_TRUE(parseJson(iv.records()[1], rec));
    EXPECT_EQ(rec.at("variant").text, "crisp");
    EXPECT_EQ(rec.at("window").number, 1.0);
    EXPECT_EQ(rec.at("retired").number, 30.0);
    EXPECT_EQ(rec.at("issued").number, 35.0);
}

TEST(IntervalUnit, IdleSpanSplitsAcrossBoundaries)
{
    IntervalStreamer iv(100);
    // Executed ticks up to cycle 150, then an idle span of 380
    // cycles covering boundaries 200, 300, 400 and 500.
    IntervalStreamer::Snapshot base = snapAt(150, 7, 9);
    base.cpi[size_t(CpiBucket::BackendMemory)] = 40;
    iv.onTick(snapAt(100, 5, 6));
    iv.onIdleSpan(base, 380, CpiBucket::BackendMemory);
    ASSERT_EQ(iv.records().size(), 5u);
    EXPECT_EQ(iv.nextBoundary(), 600u);

    // Each synthesized boundary freezes every counter and charges
    // the idle bucket for the elapsed cycles.
    for (size_t w = 1; w <= 4; ++w) {
        JsonValue rec;
        ASSERT_TRUE(parseJson(iv.records()[w], rec));
        EXPECT_EQ(rec.at("cycle").number, double(100 + 100 * w));
        EXPECT_EQ(rec.at("cycles").number, 100.0);
        // All retire/issue activity happened in executed cycles
        // 101..150, inside window 1; later windows are pure idle.
        EXPECT_EQ(rec.at("retired").number, w == 1 ? 2.0 : 0.0);
        EXPECT_EQ(rec.at("cpi").at("backend-memory").number,
                  w == 1 ? 90.0 : 100.0);
    }
}

TEST(IntervalUnit, FinishEmitsPartialWindowOnce)
{
    IntervalStreamer iv(100);
    iv.onTick(snapAt(100, 10, 10));
    iv.finish(snapAt(142, 13, 14));
    ASSERT_EQ(iv.records().size(), 2u);
    JsonValue rec;
    ASSERT_TRUE(parseJson(iv.records()[1], rec));
    EXPECT_EQ(rec.at("cycle").number, 142.0);
    EXPECT_EQ(rec.at("cycles").number, 42.0);
    EXPECT_EQ(rec.at("retired").number, 3.0);

    // A run ending exactly on a boundary has nothing left to emit.
    IntervalStreamer exact(100);
    exact.onTick(snapAt(100, 10, 10));
    exact.finish(snapAt(100, 10, 10));
    EXPECT_EQ(exact.records().size(), 1u);
}

TEST(IntervalUnit, NotifiesTracerAtEachBoundary)
{
    PipeTracer tracer("unused.kanata");
    IntervalStreamer iv(50);
    iv.setTracer(&tracer);
    iv.onTick(snapAt(50, 1, 1));
    iv.onIdleSpan(snapAt(60, 2, 2), 90, CpiBucket::BackendMemory);
    iv.finish(snapAt(170, 3, 3));

    std::ostringstream os;
    tracer.writeTo(os);
    const std::string log = os.str();
    EXPECT_NE(log.find("# [interval-boundary] window=0 cycle=50"),
              std::string::npos);
    EXPECT_NE(log.find("# [interval-boundary] window=1 cycle=100"),
              std::string::npos);
    EXPECT_NE(log.find("# [interval-boundary] window=2 cycle=150"),
              std::string::npos);
    EXPECT_NE(log.find("# [interval-boundary] window=3 cycle=170"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Engine identity + CoreStats reconciliation on real workloads.
// ---------------------------------------------------------------

constexpr uint64_t kRefOps = 60'000;
constexpr uint64_t kEvery = 3'000;

/** Shared across all instantiations in one process. */
ArtifactCache &
cache()
{
    static ArtifactCache c;
    return c;
}

struct RunResult
{
    CoreStats stats;
    std::vector<std::string> records;
};

RunResult
runWith(const Trace &trace, SimConfig cfg, TickModel model)
{
    cfg.tickModel = model;
    Core core(trace, cfg);
    IntervalStreamer iv(kEvery);
    core.setInterval(&iv);
    RunResult r;
    r.stats = core.run();
    r.records = iv.records();
    return r;
}

/** Asserts Σ window deltas == final CoreStats totals. */
void
reconcile(const RunResult &r)
{
    uint64_t cycles = 0, retired = 0, issued = 0, crit = 0;
    std::array<uint64_t, kNumCpiBuckets> cpi{};
    uint64_t last_cycle = 0;
    for (size_t w = 0; w < r.records.size(); ++w) {
        JsonValue rec;
        ASSERT_TRUE(parseJson(r.records[w], rec));
        EXPECT_EQ(rec.at("window").number, double(w));
        cycles += uint64_t(rec.at("cycles").number);
        retired += uint64_t(rec.at("retired").number);
        issued += uint64_t(rec.at("issued").number);
        crit += uint64_t(rec.at("critical_issued").number);
        for (size_t b = 0; b < kNumCpiBuckets; ++b)
            cpi[b] += uint64_t(
                rec.at("cpi").at(cpiBucketName(CpiBucket(b)))
                    .number);
        // Windows tile the run: each ends where the next begins.
        EXPECT_EQ(uint64_t(rec.at("cycle").number),
                  last_cycle + uint64_t(rec.at("cycles").number));
        last_cycle = uint64_t(rec.at("cycle").number);
    }
    EXPECT_EQ(cycles, r.stats.cycles);
    EXPECT_EQ(last_cycle, r.stats.cycles);
    EXPECT_EQ(retired, r.stats.retired);
    EXPECT_EQ(issued, r.stats.issued);
    EXPECT_EQ(crit, r.stats.issuedPrioritized);
    for (size_t b = 0; b < kNumCpiBuckets; ++b) {
        SCOPED_TRACE(cpiBucketName(CpiBucket(b)));
        EXPECT_EQ(cpi[b], r.stats.cpi.cycles[b]);
    }
}

class IntervalEngineIdentity
    : public ::testing::TestWithParam<std::string>
{
  protected:
    const WorkloadInfo &wl() const
    {
        const WorkloadInfo *w = findWorkload(GetParam());
        EXPECT_NE(w, nullptr);
        return *w;
    }
};

TEST_P(IntervalEngineIdentity, BaselineOoo)
{
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    auto trace = cache().trace(wl(), InputSet::Ref, kRefOps);
    RunResult cyc = runWith(*trace, cfg, TickModel::Cycle);
    RunResult evt = runWith(*trace, cfg, TickModel::Event);
    // Bit-identical stream: same count, same bytes, every record.
    ASSERT_EQ(cyc.records.size(), evt.records.size());
    for (size_t i = 0; i < cyc.records.size(); ++i) {
        SCOPED_TRACE("window " + std::to_string(i));
        EXPECT_EQ(cyc.records[i], evt.records[i]);
    }
    reconcile(cyc);
    reconcile(evt);
}

TEST_P(IntervalEngineIdentity, CrispTagged)
{
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    CrispOptions opts;
    auto trace = cache().taggedRefTrace(wl(), opts, cfg,
                                        /*train=*/30'000, kRefOps);
    RunResult cyc = runWith(*trace, cfg, TickModel::Cycle);
    RunResult evt = runWith(*trace, cfg, TickModel::Event);
    ASSERT_EQ(cyc.records.size(), evt.records.size());
    for (size_t i = 0; i < cyc.records.size(); ++i) {
        SCOPED_TRACE("window " + std::to_string(i));
        EXPECT_EQ(cyc.records[i], evt.records[i]);
    }
    reconcile(cyc);
    reconcile(evt);
}

// mcf: memory-bound, long idle spans the event engine skips in bulk
// (spans straddle window boundaries). namd: compute-bound with high
// base ILP, so boundaries mostly land on executed ticks. Together
// they cover both paths into emitWindow().
INSTANTIATE_TEST_SUITE_P(
    MemoryAndComputeBound, IntervalEngineIdentity,
    ::testing::Values("mcf", "namd"),
    [](const ::testing::TestParamInfo<std::string> &pinfo) {
        return pinfo.param;
    });

} // namespace
} // namespace crisp
