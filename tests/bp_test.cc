/**
 * @file
 * Unit tests for the branch predictors, BTB and RAS.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bp/bimodal.h"
#include "bp/btb.h"
#include "bp/gshare.h"
#include "bp/ras.h"
#include "bp/tage.h"

namespace crisp
{
namespace
{

/** Measures accuracy of @p pred on @p n outcomes from @p gen. */
template <typename Gen>
double
accuracy(DirectionPredictor &pred, unsigned n, Gen gen,
         uint64_t pc = 0x4000)
{
    unsigned correct = 0;
    for (unsigned i = 0; i < n; ++i) {
        bool taken = gen(i);
        if (pred.predict(pc) == taken)
            ++correct;
        pred.update(pc, taken);
    }
    return double(correct) / double(n);
}

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor pred;
    double acc =
        accuracy(pred, 2000, [](unsigned) { return true; });
    EXPECT_GT(acc, 0.99);
}

TEST(Bimodal, TracksPerPcIndependently)
{
    BimodalPredictor pred;
    for (int i = 0; i < 100; ++i) {
        pred.predict(0x1000);
        pred.update(0x1000, true);
        pred.predict(0x2000);
        pred.update(0x2000, false);
    }
    EXPECT_TRUE(pred.predict(0x1000));
    EXPECT_FALSE(pred.predict(0x2000));
}

TEST(Gshare, LearnsAlternatingPattern)
{
    GsharePredictor pred;
    double acc =
        accuracy(pred, 4000, [](unsigned i) { return i % 2 == 0; });
    EXPECT_GT(acc, 0.95);
}

TEST(Tage, LearnsShortPeriodPattern)
{
    TagePredictor pred;
    double acc =
        accuracy(pred, 6000, [](unsigned i) { return i % 4 == 0; });
    EXPECT_GT(acc, 0.95);
}

TEST(Tage, LearnsLongPeriodLoopExit)
{
    // A loop taken 31 times then not taken: needs ~32 bits of
    // history, beyond bimodal and short-history predictors.
    TagePredictor tage;
    double acc = accuracy(tage, 20000,
                          [](unsigned i) { return i % 32 != 31; });
    EXPECT_GT(acc, 0.97);

    BimodalPredictor bi;
    double bacc = accuracy(bi, 20000,
                           [](unsigned i) { return i % 32 != 31; });
    EXPECT_GT(acc, bacc); // TAGE strictly better here
}

TEST(Tage, RandomOutcomesNearChance)
{
    TagePredictor pred;
    uint64_t s = 12345;
    double acc = accuracy(pred, 8000, [&s](unsigned) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return (s >> 33) & 1;
    });
    EXPECT_LT(acc, 0.62); // cannot predict true randomness
    EXPECT_GT(acc, 0.38);
}

TEST(Tage, InterferenceAcrossManyBranches)
{
    // 256 branches with distinct biases must coexist.
    TagePredictor pred;
    unsigned correct = 0, total = 0;
    for (unsigned round = 0; round < 60; ++round) {
        for (unsigned b = 0; b < 256; ++b) {
            uint64_t pc = 0x1000 + b * 12;
            bool taken = (b & 1) != 0;
            if (round > 10) {
                ++total;
                correct += pred.predict(pc) == taken;
            } else {
                pred.predict(pc);
            }
            pred.update(pc, taken);
        }
    }
    EXPECT_GT(double(correct) / double(total), 0.9);
}

// -------------------------------------------------------------- BTB

TEST(Btb, MissThenHit)
{
    Btb btb(64, 4);
    uint64_t target = 0;
    EXPECT_FALSE(btb.lookup(0x1000, target));
    btb.update(0x1000, 0x2000);
    EXPECT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x2000u);
}

TEST(Btb, UpdateReplacesTarget)
{
    Btb btb(64, 4);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    uint64_t target = 0;
    ASSERT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x3000u);
}

TEST(Btb, LruEvictionWithinSet)
{
    Btb btb(8, 2); // 4 sets, 2 ways
    // Three PCs mapping to the same set (stride = 2*sets = 8 pcs
    // apart at >>1 indexing): pc, pc+8, pc+16 share set (pc>>1)%4.
    uint64_t p0 = 0x1000, p1 = 0x1008, p2 = 0x1010;
    btb.update(p0, 1);
    btb.update(p1, 2);
    uint64_t t = 0;
    ASSERT_TRUE(btb.lookup(p0, t)); // p0 most recently used
    btb.update(p2, 3);              // evicts p1 (LRU)
    EXPECT_TRUE(btb.lookup(p0, t));
    EXPECT_FALSE(btb.lookup(p1, t));
    EXPECT_TRUE(btb.lookup(p2, t));
}

TEST(Btb, CountsHitsAndLookups)
{
    Btb btb(64, 4);
    uint64_t t;
    btb.lookup(0x1000, t);
    btb.update(0x1000, 0x2000);
    btb.lookup(0x1000, t);
    EXPECT_EQ(btb.lookups(), 2u);
    EXPECT_EQ(btb.hits(), 1u);
}

// -------------------------------------------------------------- RAS

TEST(Ras, LifoOrder)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u); // empty
}

TEST(Ras, OverflowWrapsOldestEntries)
{
    Ras ras(4);
    for (uint64_t i = 1; i <= 6; ++i)
        ras.push(i * 0x10);
    EXPECT_EQ(ras.size(), 4u);
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), 0u); // 0x10/0x20 were overwritten
}

} // namespace
} // namespace crisp
