/**
 * @file
 * Suite-level regression tests: pin the qualitative results the
 * reproduction stands on (Fig 7's ordering and sign structure), so
 * future changes cannot silently destroy them. Bounds are loose —
 * these check shape, not absolute IPC.
 */

#include <gtest/gtest.h>

#include "sim/driver.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

WorkloadEval
eval(const char *name,
     const std::vector<std::string> &ists = {})
{
    const WorkloadInfo *wl = findWorkload(name);
    EXPECT_NE(wl, nullptr);
    EvalSizes sizes{150'000, 300'000};
    return evaluateWorkload(*wl, SimConfig::skylake(),
                            CrispOptions{}, sizes, ists);
}

TEST(Regression, MemcachedGainsSubstantially)
{
    WorkloadEval ev = eval("memcached", {"1K"});
    EXPECT_GT(ev.crispSpeedup(), 1.04);
    // IBDA misses the through-memory spill: clearly below CRISP.
    EXPECT_GT(ev.crispSpeedup(), ev.ibdaSpeedup("1K") + 0.02);
}

TEST(Regression, NamdSpillDefeatsIbda)
{
    WorkloadEval ev = eval("namd", {"inf"});
    EXPECT_GT(ev.crispSpeedup(), 1.03);
    // Even an infinite IST cannot see the dependence through memory.
    EXPECT_GT(ev.crispSpeedup(), ev.ibdaSpeedup("inf") + 0.02);
}

TEST(Regression, BwavesCorrectlyLeftAlone)
{
    // High-MLP misses: the §3.2 MLP filter must decline to tag.
    WorkloadEval ev = eval("bwaves");
    EXPECT_TRUE(ev.analysis.delinquentLoads.empty());
    EXPECT_NEAR(ev.crispSpeedup(), 1.0, 0.01);
}

TEST(Regression, ImgdnnNearNeutral)
{
    // High baseline ILP, cache-resident: nothing to accelerate.
    WorkloadEval ev = eval("imgdnn");
    EXPECT_NEAR(ev.crispSpeedup(), 1.0, 0.02);
}

TEST(Regression, PointerChaseMotivatingGain)
{
    WorkloadEval ev = eval("pointer_chase");
    EXPECT_GT(ev.crispSpeedup(), 1.025);
    // The slice crosses the stack: the analysis must find the store.
    EXPECT_GE(ev.analysis.avgLoadSliceSize, 4.0);
}

TEST(Regression, CrispNeverHurtsBadly)
{
    // Across a representative sample, CRISP stays within noise of
    // the baseline even where it cannot help.
    for (const char *name :
         {"mcf", "gcc", "fotonik", "perlbench"}) {
        WorkloadEval ev = eval(name);
        EXPECT_GT(ev.crispSpeedup(), 0.985) << name;
    }
}

TEST(Regression, BranchSlicingCarriesDeepsjeng)
{
    // deepsjeng's gain comes from branch slices (paper §5.3).
    const WorkloadInfo *wl = findWorkload("deepsjeng");
    ASSERT_NE(wl, nullptr);
    EvalSizes sizes{150'000, 300'000};
    SimConfig cfg = SimConfig::skylake();

    CrispOptions no_branches;
    no_branches.enableBranchSlices = false;
    CrispOptions both;

    CrispPipeline base_pipe(*wl, no_branches, cfg, sizes.trainOps,
                            sizes.refOps);
    Trace base_trace = base_pipe.refTrace(false);
    double base = runCore(base_trace, cfg).ipc();

    SimConfig ccfg = cfg;
    ccfg.scheduler = SchedulerPolicy::CrispPriority;

    CrispPipeline pb(*wl, both, cfg, sizes.trainOps, sizes.refOps);
    Trace tagged = pb.refTrace(true);
    double with_branches = runCore(tagged, ccfg).ipc();

    EXPECT_GT(with_branches / base, 1.03);
}

} // namespace
} // namespace crisp
