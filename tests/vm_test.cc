/**
 * @file
 * Unit tests for the VM: sparse memory, the assembler DSL and the
 * interpreter's opcode semantics and control flow.
 */

#include <gtest/gtest.h>

#include <memory>

#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "vm/memory.h"

namespace crisp
{
namespace
{

// ---------------------------------------------------------- Memory

TEST(Memory, ZeroInitialized)
{
    Memory mem;
    EXPECT_EQ(mem.read64(0x1000), 0u);
    EXPECT_EQ(mem.read64(0xdeadbe00), 0u);
}

TEST(Memory, ReadBackWrites)
{
    Memory mem;
    mem.write64(0x2000, 0x1234567890abcdefULL);
    mem.write64(0x2008, 42);
    EXPECT_EQ(mem.read64(0x2000), 0x1234567890abcdefULL);
    EXPECT_EQ(mem.read64(0x2008), 42u);
}

TEST(Memory, PagesAllocatedLazily)
{
    Memory mem;
    EXPECT_EQ(mem.mappedPages(), 0u);
    mem.write64(0x0, 1);
    mem.write64(0x8, 2);
    EXPECT_EQ(mem.mappedPages(), 1u); // same 4 KiB page
    mem.write64(0x100000, 3);
    EXPECT_EQ(mem.mappedPages(), 2u);
}

TEST(Memory, DistantAddressesIndependent)
{
    Memory mem;
    mem.write64(0x1000, 7);
    mem.write64(0x1000 + (1ULL << 40), 9);
    EXPECT_EQ(mem.read64(0x1000), 7u);
    EXPECT_EQ(mem.read64(0x1000 + (1ULL << 40)), 9u);
}

// ------------------------------------------------------- Assembler

TEST(Assembler, LayoutAssignsConsecutivePcs)
{
    Assembler a;
    a.movi(1, 5);     // 7 bytes
    a.add(2, 1, 1);   // 3 bytes
    a.halt();         // 1 byte
    Program p = a.finish("t");
    ASSERT_EQ(p.code.size(), 3u);
    EXPECT_EQ(p.code[0].pc, kCodeBase);
    EXPECT_EQ(p.code[1].pc, kCodeBase + 7);
    EXPECT_EQ(p.code[2].pc, kCodeBase + 10);
    EXPECT_EQ(p.indexOfPc(kCodeBase + 7), 1);
    EXPECT_EQ(p.indexOfPc(kCodeBase + 8), -1);
    EXPECT_EQ(p.staticBytes(), 11u);
}

TEST(Assembler, ForwardAndBackwardLabels)
{
    Assembler a;
    auto fwd = a.label();
    auto back = a.label();
    a.bind(back);
    a.movi(1, 1);
    a.beq(0, 0, fwd);   // forward reference
    a.jmp(back);        // backward reference
    a.bind(fwd);
    a.halt();
    Program p = a.finish("t");
    EXPECT_EQ(p.code[1].target, a.indexOf(fwd));
    EXPECT_EQ(p.code[2].target, a.indexOf(back));
    EXPECT_EQ(a.indexOf(back), 0u);
    EXPECT_EQ(a.indexOf(fwd), 3u);
}

TEST(Assembler, PokesReachProgram)
{
    Assembler a;
    a.poke(0x5000, 99);
    a.halt();
    Program p = a.finish("t");
    ASSERT_EQ(p.dataInit.size(), 1u);
    EXPECT_EQ(p.dataInit[0].first, 0x5000u);
    EXPECT_EQ(p.dataInit[0].second, 99u);
}

// ----------------------------------------------------- Interpreter

/** Runs a tiny program and returns the interpreter for inspection. */
std::pair<Trace, std::shared_ptr<Interpreter>>
runProgram(Assembler &a, uint64_t max_ops = 100000)
{
    auto prog = std::make_shared<Program>(a.finish("t"));
    auto interp = std::make_shared<Interpreter>(prog);
    Trace t = interp->run(max_ops);
    return {std::move(t), interp};
}

TEST(Interpreter, AluSemantics)
{
    Assembler a;
    a.movi(1, 10);
    a.movi(2, 3);
    a.add(3, 1, 2);    // 13
    a.sub(4, 1, 2);    // 7
    a.mul(5, 1, 2);    // 30
    a.div(6, 1, 2);    // 3
    a.rem(7, 1, 2);    // 1
    a.and_(8, 1, 2);   // 2
    a.or_(9, 1, 2);    // 11
    a.xor_(10, 1, 2);  // 9
    a.shl(11, 1, 2);   // 80
    a.shr(12, 1, 2);   // 1
    a.slt(13, 2, 1);   // 1
    a.slt(14, 1, 2);   // 0
    a.halt();
    auto [t, interp] = runProgram(a);
    EXPECT_EQ(interp->reg(3), 13);
    EXPECT_EQ(interp->reg(4), 7);
    EXPECT_EQ(interp->reg(5), 30);
    EXPECT_EQ(interp->reg(6), 3);
    EXPECT_EQ(interp->reg(7), 1);
    EXPECT_EQ(interp->reg(8), 2);
    EXPECT_EQ(interp->reg(9), 11);
    EXPECT_EQ(interp->reg(10), 9);
    EXPECT_EQ(interp->reg(11), 80);
    EXPECT_EQ(interp->reg(12), 1);
    EXPECT_EQ(interp->reg(13), 1);
    EXPECT_EQ(interp->reg(14), 0);
    EXPECT_TRUE(interp->halted());
}

TEST(Interpreter, DivisionByZeroYieldsZero)
{
    Assembler a;
    a.movi(1, 10);
    a.movi(2, 0);
    a.div(3, 1, 2);
    a.rem(4, 1, 2);
    a.halt();
    auto [t, interp] = runProgram(a);
    EXPECT_EQ(interp->reg(3), 0);
    EXPECT_EQ(interp->reg(4), 0);
}

TEST(Interpreter, ImmediateOps)
{
    Assembler a;
    a.movi(1, 100);
    a.addi(2, 1, -1);
    a.muli(3, 1, 4);
    a.andi(4, 1, 0x6);
    a.shli(5, 1, 1);
    a.shri(6, 1, 2);
    a.slti(7, 1, 101);
    a.xori(8, 1, 0xff);
    a.ori(9, 1, 0x3);
    a.halt();
    auto [t, interp] = runProgram(a);
    EXPECT_EQ(interp->reg(2), 99);
    EXPECT_EQ(interp->reg(3), 400);
    EXPECT_EQ(interp->reg(4), 100 & 6);
    EXPECT_EQ(interp->reg(5), 200);
    EXPECT_EQ(interp->reg(6), 25);
    EXPECT_EQ(interp->reg(7), 1);
    EXPECT_EQ(interp->reg(8), 100 ^ 0xff);
    EXPECT_EQ(interp->reg(9), 100 | 3);
}

TEST(Interpreter, LoadsAndStores)
{
    Assembler a;
    a.poke(0x8000, 77);
    a.movi(1, 0x8000);
    a.ld(2, 1, 0);        // 77
    a.movi(3, 8);
    a.st(1, 2, 8);        // mem[0x8008] = 77
    a.ldx(4, 1, 3, 0);    // mem[0x8000+8] = 77
    a.movi(5, 123);
    a.stx(1, 3, 5, 8);    // mem[0x8010] = 123
    a.ld(6, 1, 16);
    a.halt();
    auto [t, interp] = runProgram(a);
    EXPECT_EQ(interp->reg(2), 77);
    EXPECT_EQ(interp->reg(4), 77);
    EXPECT_EQ(interp->reg(6), 123);
    // Effective addresses recorded in the trace (op 1 is the ld).
    EXPECT_EQ(t.ops[1].effAddr, 0x8000u);
    EXPECT_EQ(t.ops[1].memSize, 8u);
}

TEST(Interpreter, BranchSemanticsAndTrace)
{
    Assembler a;
    auto target = a.label();
    a.movi(1, 1);
    a.movi(2, 2);
    a.blt(1, 2, target);   // taken
    a.movi(3, 111);        // skipped
    a.bind(target);
    a.beq(1, 2, target);   // not taken
    a.halt();
    auto [t, interp] = runProgram(a);
    EXPECT_EQ(interp->reg(3), 0);
    // Trace: movi, movi, blt(taken), beq(not), halt.
    ASSERT_EQ(t.size(), 5u);
    EXPECT_TRUE(t.ops[2].taken);
    EXPECT_FALSE(t.ops[3].taken);
    // nextPc of the taken branch is the target's pc.
    EXPECT_EQ(t.ops[2].nextPc, t.ops[3].pc);
}

TEST(Interpreter, LoopExecutesExactTripCount)
{
    Assembler a;
    a.movi(1, 0);
    a.movi(2, 10);
    auto loop = a.label();
    a.bind(loop);
    a.addi(1, 1, 1);
    a.blt(1, 2, loop);
    a.halt();
    auto [t, interp] = runProgram(a);
    EXPECT_EQ(interp->reg(1), 10);
    // 2 movi + 10*(addi,blt) + halt
    EXPECT_EQ(t.size(), 2u + 20u + 1u);
}

TEST(Interpreter, CallAndReturn)
{
    Assembler a;
    auto fn = a.label();
    a.movi(1, 5);
    a.call(60, fn);
    a.addi(1, 1, 100);   // after return: 5*2+100
    a.halt();
    a.bind(fn);
    a.muli(1, 1, 2);
    a.ret(60);
    auto [t, interp] = runProgram(a);
    EXPECT_EQ(interp->reg(1), 110);
    EXPECT_TRUE(interp->halted());
}

TEST(Interpreter, IndirectJumpViaStaticIndex)
{
    Assembler a;
    auto tgt = a.label();
    a.movi(1, 0);     // patched below via data+load
    a.movi(2, 0x9000);
    a.ld(1, 2, 0);    // load the target index
    a.jr(1);
    a.movi(3, 1);     // skipped
    a.bind(tgt);
    a.movi(4, 9);
    a.halt();
    // Resolve tgt's static index into data memory.
    a.poke(0x9000, a.indexOf(tgt));
    auto [t, interp] = runProgram(a);
    EXPECT_EQ(interp->reg(3), 0);
    EXPECT_EQ(interp->reg(4), 9);
}

TEST(Interpreter, MaxOpsCapStopsWithoutHalt)
{
    Assembler a;
    auto loop = a.label();
    a.bind(loop);
    a.addi(1, 1, 1);
    a.jmp(loop);
    auto prog = std::make_shared<Program>(a.finish("t"));
    Interpreter interp(prog);
    Trace t = interp.run(1000);
    EXPECT_EQ(t.size(), 1000u);
    EXPECT_FALSE(interp.halted());
}

TEST(Interpreter, CriticalFlagsFlowIntoTrace)
{
    Assembler a;
    a.movi(1, 1);
    a.addi(1, 1, 1);
    a.halt();
    Program p = a.finish("t");
    p.code[1].critical = true;
    p.code[1].size += 1;
    p.layout();
    auto prog = std::make_shared<Program>(std::move(p));
    Interpreter interp(prog);
    Trace t = interp.run(10);
    EXPECT_FALSE(t.ops[0].critical);
    EXPECT_TRUE(t.ops[1].critical);
    EXPECT_EQ(t.ops[1].instSize, prog->code[1].size);
}

TEST(Interpreter, DeterministicAcrossRuns)
{
    Assembler a;
    a.movi(1, 3);
    a.movi(2, 0);
    auto loop = a.label();
    a.bind(loop);
    a.mul(1, 1, 1);
    a.addi(2, 2, 1);
    a.slti(3, 2, 4);
    a.bne(3, 0, loop);
    a.halt();
    auto prog = std::make_shared<Program>(a.finish("t"));
    Interpreter i1(prog), i2(prog);
    Trace t1 = i1.run(1000), t2 = i2.run(1000);
    ASSERT_EQ(t1.size(), t2.size());
    for (size_t k = 0; k < t1.size(); ++k) {
        EXPECT_EQ(t1.ops[k].pc, t2.ops[k].pc);
        EXPECT_EQ(t1.ops[k].effAddr, t2.ops[k].effAddr);
    }
}

} // namespace
} // namespace crisp
