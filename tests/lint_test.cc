/**
 * @file
 * crisp_lint checker tests (src/lint, DESIGN.md §16): each rule on
 * known-good and known-bad fixtures with exact diagnostics,
 * suppression comments, compile-database file extraction, and a
 * repo-cleanliness check over the checker's own sources.
 */

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"

namespace fs = std::filesystem;
using crisp::lint::Diagnostic;
using crisp::lint::filesFromCompileCommands;
using crisp::lint::formatDiagnostic;
using crisp::lint::lintFile;
using crisp::lint::lintSource;
using crisp::lint::ruleNames;

namespace
{

/** Temp dir that cleans up after itself. */
struct ScratchDir
{
    fs::path path;
    ScratchDir()
    {
        path = fs::temp_directory_path() /
               ("crisp_lint_test_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        fs::create_directories(path);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    static int counter;
};
int ScratchDir::counter = 0;

std::vector<std::string>
rulesOf(const std::vector<Diagnostic> &diags)
{
    std::vector<std::string> out;
    for (const Diagnostic &d : diags)
        out.push_back(d.rule);
    return out;
}

} // namespace

TEST(LintRules, RuleNamesAreStable)
{
    EXPECT_EQ(ruleNames(),
              (std::vector<std::string>{
                  "blocking-under-lock", "wait-needs-predicate",
                  "cancel-token-acquire",
                  "stat-registration-after-thread-start",
                  "serialize-under-lock"}));
}

TEST(LintRules, CleanFileHasNoFindings)
{
    const std::string src = R"(
#include <mutex>
void f(M &m, Q &queue_, CV &cv) {
    {
        MutexLock lk(m);
        state = 1;
    }
    queue_.push(1);           // outside the guard scope: fine
    cv.wait(lk, [] { return ready; });
    cv.waitUntil(lk, deadline, [] { return ready; });
}
)";
    EXPECT_TRUE(lintSource("clean.cc", src).empty());
}

TEST(LintRules, BlockingUnderLockFlagsEachCallKind)
{
    const std::string src = R"(
void f(std::mutex &m, Q &jobQueue, P &pool) {
    std::lock_guard<std::mutex> lk(m);
    pool.submit([] {});
    parallelFor(0, n, body);
    waitEvents(id, 0, out, term);
    ::send(fd, buf, len, 0);
    ::recv(fd, buf, len, 0);
    std::ofstream os("x");
    fprintf(stderr, "x");
    jobQueue.push(e);
    jobQueue.pop(e);
}
)";
    auto diags = lintSource("bad.cc", src);
    ASSERT_EQ(diags.size(), 9u);
    for (const Diagnostic &d : diags) {
        EXPECT_EQ(d.rule, "blocking-under-lock");
        EXPECT_NE(d.message.find("guard declared line 3"),
                  std::string::npos)
            << d.message;
    }
    // Exact first diagnostic, clang-style.
    EXPECT_EQ(formatDiagnostic(diags[0]),
              "bad.cc:4: error: [blocking-under-lock] blocking "
              "call 'ThreadPool submit' while holding a lock "
              "(guard declared line 3)");
}

TEST(LintRules, GuardScopeEndsAtClosingBrace)
{
    const std::string src = R"(
void f(M &m, Q &queue_) {
    {
        MutexLock lk(m);
    }
    queue_.push(1);
}
)";
    EXPECT_TRUE(lintSource("scoped.cc", src).empty());
}

TEST(LintRules, NonQueueReceiversOfPushAreNotFlagged)
{
    const std::string src = R"(
void f(M &m, std::vector<int> &events) {
    MutexLock lk(m);
    events.push_back(1);
    out.push(2);
}
)";
    EXPECT_TRUE(lintSource("vec.cc", src).empty());
}

TEST(LintRules, WaitNeedsPredicateExactDiagnostics)
{
    const std::string src = R"(
void f(CV &cv, L &lk) {
    cv.wait(lk);
    cv.wait(lk, [] { return ready; });
    cv.wait_for(lk, std::chrono::seconds(1));
    cv.wait_until(lk, deadline);
    cv.waitFor(lk, dur, [] { return ready; });
    cv.waitUntil(lk, deadline, [] { return ready; });
}
)";
    auto diags = lintSource("wait.cc", src);
    ASSERT_EQ(diags.size(), 3u);
    EXPECT_EQ(diags[0].line, 3);
    EXPECT_EQ(diags[1].line, 5);
    EXPECT_EQ(diags[2].line, 6);
    for (const Diagnostic &d : diags)
        EXPECT_EQ(d.rule, "wait-needs-predicate");
    EXPECT_EQ(
        formatDiagnostic(diags[0]),
        "wait.cc:3: error: [wait-needs-predicate] condition wait "
        "without a predicate (spurious wakeups and missed "
        "notifies go unchecked)");
}

TEST(LintRules, PredicateArgumentsWithCommasCountAsOne)
{
    // Commas inside the lambda body / brackets must not split the
    // argument: this wait has exactly two args and is fine.
    const std::string src = R"(
void f(CV &cv, L &lk) {
    cv.wait(lk, [a, b] { return g(a, b) || h(c[1, 2]); });
}
)";
    EXPECT_TRUE(lintSource("commas.cc", src).empty());
}

TEST(LintRules, CancelTokenFileRejectsRelaxedEverywhere)
{
    const std::string src = R"(
class CancelToken {
    bool cancelled() const {
        return flag_.load(std::memory_order_relaxed);
    }
};
)";
    auto diags = lintSource("cancel.h", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "cancel-token-acquire");
    EXPECT_EQ(diags[0].line, 4);
}

TEST(LintRules, CancelPollSitesNeedAcquire)
{
    const std::string src = R"(
void f(const CancelToken &token) {
    bool c = token.cancelledRelaxed(std::memory_order_relaxed);
    counter.fetch_add(1, std::memory_order_relaxed);
}
)";
    auto diags = lintSource("poll.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "cancel-token-acquire");
    EXPECT_EQ(diags[0].line, 3);
    // Line 4's relaxed counter bump has no cancel identifier in its
    // statement and stays legal.
}

TEST(LintRules, StatRegistrationAfterThreadStart)
{
    const std::string src = R"(
void setup(StatRegistry &reg) {
    reg.addCounter("ok.before", v);
    std::thread t([] {});
    reg.addCounter("bad.after", v);
    StatRegistry local;
    local.addScalar("ok.local", v);
    t.join();
}
void later(StatRegistry &reg) {
    reg.addScalar("ok.new.function", v);
}
)";
    auto diags = lintSource("stats.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule,
              "stat-registration-after-thread-start");
    EXPECT_EQ(diags[0].line, 5);
}

TEST(LintRules, SerializeUnderLockFlagsEachSerializer)
{
    const std::string src = R"(
std::string flush(M &m) {
    MutexLock lk(m);
    reg.writeJson(path);
    reg.writeCsv(path);
    return tracer.toJson();
}
)";
    auto diags = lintSource("flush.cc", src);
    ASSERT_EQ(diags.size(), 3u);
    for (const Diagnostic &d : diags)
        EXPECT_EQ(d.rule, "serialize-under-lock");
    EXPECT_EQ(diags[0].line, 4);
    EXPECT_EQ(diags[1].line, 5);
    EXPECT_EQ(diags[2].line, 6);
}

TEST(LintRules, SerializeOutsideLockIsClean)
{
    // The sanctioned idiom: snapshot under the mutex, serialize
    // after the guard scope closes. Declarations ("std::string
    // toJson() const;") never fire: no guard is live at file scope.
    const std::string src = R"(
std::string toJson() const;
std::string flush(M &m) {
    Snapshot snap;
    {
        MutexLock lk(m);
        snap = data_;
    }
    return snap.toJson();
}
)";
    EXPECT_TRUE(lintSource("flush_ok.cc", src).empty());
}

TEST(LintSuppression, AllowCommentCoversSameAndNextLine)
{
    const std::string src = R"(
void f(CV &cv, L &lk) {
    cv.wait(lk); // crisp-lint: allow(wait-needs-predicate)
    // crisp-lint: allow(wait-needs-predicate)
    cv.wait(lk);
    cv.wait(lk);
}
)";
    auto diags = lintSource("sup.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 6);
}

TEST(LintSuppression, AllowListAndWrongRuleDoNotLeak)
{
    const std::string src = R"(
void f(M &m, Q &jobQueue) {
    MutexLock lk(m);
    // crisp-lint: allow(blocking-under-lock,wait-needs-predicate)
    jobQueue.push(e);
    // crisp-lint: allow(wait-needs-predicate)
    jobQueue.push(e);
}
)";
    auto diags = lintSource("list.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 7);
    EXPECT_EQ(diags[0].rule, "blocking-under-lock");
}

TEST(LintLexer, CommentsStringsAndPreprocessorAreInert)
{
    // Every trigger below lives in a comment, string literal, raw
    // string or preprocessor line — none may fire.
    const std::string src = R"raw(
#define WAIT(cv, lk) cv.wait(lk)
// cv.wait(lk); MutexLock lk(m); queue_.push(1);
/* std::thread t([]{}); reg.addCounter("x", 1); */
const char *s = "cv.wait(lk); memory_order_relaxed";
const char *r = R"(MutexLock lk(m); ::send(fd, 0, 0, 0);)";
)raw";
    EXPECT_TRUE(lintSource("inert.cc", src).empty());
}

TEST(LintFiles, IoErrorDiagnosticForMissingFile)
{
    auto diags = lintFile("/nonexistent/crisp/nope.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "io-error");
    EXPECT_EQ(diags[0].line, 0);
}

TEST(LintFiles, CompileCommandsExtractionAndSiblingHeaders)
{
    ScratchDir tmp;
    fs::path srcDir = tmp.path / "proj" / "src" / "sim";
    fs::create_directories(srcDir);
    std::ofstream(srcDir / "a.cc") << "void a() {}\n";
    std::ofstream(srcDir / "a.h") << "void a();\n";
    std::ofstream(srcDir / "b.h") << "void b();\n";
    fs::path thirdParty = tmp.path / "proj" / "extern";
    fs::create_directories(thirdParty);
    std::ofstream(thirdParty / "t.cc") << "void t() {}\n";

    fs::path db = tmp.path / "compile_commands.json";
    std::ofstream(db)
        << "[\n"
        << "  {\"directory\": \"" << (tmp.path / "proj").string()
        << "\", \"command\": \"c++ -c src/sim/a.cc\", "
        << "\"file\": \"src/sim/a.cc\"},\n"
        << "  {\"directory\": \"" << (tmp.path / "proj").string()
        << "\", \"command\": \"c++ -c extern/t.cc\", "
        << "\"file\": \"" << (thirdParty / "t.cc").string()
        << "\"}\n"
        << "]\n";

    std::vector<std::string> files;
    std::string error;
    ASSERT_TRUE(
        filesFromCompileCommands(db.string(), files, &error))
        << error;
    // The TU plus both sibling headers; the out-of-tree file is
    // filtered.
    ASSERT_EQ(files.size(), 3u);
    EXPECT_NE(std::find(files.begin(), files.end(),
                        (srcDir / "a.cc").string()),
              files.end());
    EXPECT_NE(std::find(files.begin(), files.end(),
                        (srcDir / "a.h").string()),
              files.end());
    EXPECT_NE(std::find(files.begin(), files.end(),
                        (srcDir / "b.h").string()),
              files.end());
}

TEST(LintFiles, CompileCommandsErrorsAreReported)
{
    ScratchDir tmp;
    std::vector<std::string> files;
    std::string error;
    EXPECT_FALSE(filesFromCompileCommands(
        (tmp.path / "missing.json").string(), files, &error));
    EXPECT_FALSE(error.empty());

    fs::path notArray = tmp.path / "bad.json";
    std::ofstream(notArray) << "{\"not\": \"a database\"}\n";
    error.clear();
    EXPECT_FALSE(filesFromCompileCommands(notArray.string(),
                                          files, &error));
    EXPECT_NE(error.find("compile database"), std::string::npos);
}

/** The checker must be clean over its own sources — the same
 *  invariant CI enforces repo-wide via the compile database. */
TEST(LintRepo, CheckerSourcesAreClean)
{
    fs::path here = fs::path(__FILE__).parent_path();
    fs::path lintDir = here.parent_path() / "src" / "lint";
    if (!fs::exists(lintDir / "lint.cc"))
        GTEST_SKIP() << "source tree not available at " << lintDir;
    for (const char *name : {"lint.h", "lint.cc"}) {
        auto diags = lintFile((lintDir / name).string());
        EXPECT_TRUE(diags.empty())
            << name << ": "
            << (diags.empty() ? std::string()
                              : formatDiagnostic(diags[0]));
    }
}

/** The concurrency core the rules were written for must be clean
 *  too (with its in-tree suppressions honored). */
TEST(LintRepo, ConcurrencyCoreIsClean)
{
    fs::path here = fs::path(__FILE__).parent_path();
    fs::path src = here.parent_path() / "src";
    if (!fs::exists(src / "sim" / "sync.h"))
        GTEST_SKIP() << "source tree not available at " << src;
    for (const char *rel :
         {"sim/sync.h", "sim/cancel.h", "sim/thread_pool.cc",
          "sim/artifact_cache.cc", "sim/warm_store.cc",
          "serve/job_queue.cc", "serve/server.cc",
          "serve/transport.cc"}) {
        auto diags = lintFile((src / rel).string());
        std::string all;
        for (const Diagnostic &d : diags)
            all += formatDiagnostic(d) + "\n";
        EXPECT_TRUE(diags.empty()) << rel << ":\n" << all;
    }
}
