/**
 * @file
 * Tests for the §6.1/§5.5 extensions: criticality-aware DRAM
 * scheduling, long-latency (division) slices, indirect-jump branch
 * profiling, and the threshold auto-tuner.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/autotune.h"
#include "core/delinquency.h"
#include "core/pipeline.h"
#include "core/profiler.h"
#include "dram/controller.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

constexpr uint64_t kQuiet = 5000;

TEST(CriticalDram, BypassesBusQueue)
{
    Ddr4Timing t;
    DramController dram(t);
    // Saturate the bus with non-critical requests.
    for (unsigned k = 0; k < 6; ++k)
        dram.access(uint64_t(k) * 64, kQuiet);
    uint64_t noncrit = dram.access(6 * 64, kQuiet);
    dram.reset();
    for (unsigned k = 0; k < 6; ++k)
        dram.access(uint64_t(k) * 64, kQuiet);
    uint64_t crit = dram.access(6 * 64, kQuiet, /*critical=*/true);
    EXPECT_LT(crit, noncrit);
    EXPECT_EQ(dram.stats().criticalReads, 1u);
    EXPECT_GT(dram.stats().criticalBusBypassCycles, 0u);
}

TEST(CriticalDram, NoEffectWhenBusIdle)
{
    Ddr4Timing t;
    DramController a(t), b(t);
    uint64_t plain = a.access(0x1000, kQuiet);
    uint64_t crit = b.access(0x1000, kQuiet, true);
    EXPECT_EQ(plain, crit);
}

TEST(LongLatency, ProfilerCountsDivisions)
{
    Assembler a;
    a.movi(1, 1000);
    a.movi(2, 3);
    a.movi(3, 0);
    auto loop = a.label();
    a.bind(loop);
    a.div(4, 1, 2);
    a.fdiv(5, 1, 2);
    a.addi(3, 3, 1);
    a.slti(6, 3, 200);
    a.bne(6, 0, loop);
    a.halt();
    auto prog = std::make_shared<Program>(a.finish("divs"));
    Interpreter interp(prog);
    Trace t = interp.run(100000);
    ProfileResult prof = profileTrace(t, SimConfig::skylake());
    ASSERT_EQ(prof.longLatencyOps.size(), 2u);
    for (const auto &[sidx, exec] : prof.longLatencyOps)
        EXPECT_EQ(exec, 200u);
}

TEST(LongLatency, SelectionGatesOnToggleAndShare)
{
    ProfileResult prof;
    prof.totalOps = 10000;
    prof.longLatencyOps[5] = 500;  // 5% share
    prof.longLatencyOps[9] = 2;    // below min share

    CrispOptions off; // default: extension disabled
    EXPECT_TRUE(selectLongLatencyOps(prof, off).empty());

    CrispOptions on;
    on.enableLongLatencySlices = true;
    auto picked = selectLongLatencyOps(prof, on);
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0], 5u);
}

TEST(LongLatency, PipelineTagsDivisionSlices)
{
    // A kernel whose hot division feeds everything after it.
    WorkloadInfo wl{
        "div_kernel", "test kernel", +[](InputSet input) {
            Rng rng(input == InputSet::Train ? 1 : 2);
            Assembler a;
            a.poke(kGlobalBase, rng.next(100) + 5000);
            a.movi(1, int64_t(kGlobalBase));
            a.ld(2, 1, 0);
            a.movi(3, 0);
            a.movi(7, 12345);
            auto loop = a.label();
            a.bind(loop);
            a.muli(7, 7, 48271);
            a.div(4, 7, 2);      // hot division
            a.fadd(5, 5, 4);
            a.addi(3, 3, 1);
            a.blt(3, 2, loop);
            a.halt();
            return a.finish("div_kernel");
        }};
    CrispOptions opts;
    opts.enableLongLatencySlices = true;
    CrispPipeline pipe(wl, opts, SimConfig::skylake(), 50'000,
                       50'000);
    const CrispAnalysis &an = pipe.analysis();
    EXPECT_GE(an.longLatencyOps.size(), 1u);
    EXPECT_GE(an.longLatencySlices.size(), 1u);
    EXPECT_FALSE(an.taggedStatics.empty());
}

TEST(IndirectJumps, ProfiledAsBranches)
{
    // A two-target indirect jump alternating every iteration: the
    // last-target predictor mispredicts constantly.
    Assembler a;
    auto t1 = a.label();
    auto t2 = a.label();
    auto join = a.label();
    a.movi(1, 0x9000);
    a.movi(2, 0);
    auto loop = a.label();
    a.bind(loop);
    a.andi(3, 2, 8);
    a.ldx(4, 1, 3);   // target index from a 2-entry table
    a.jr(4);
    a.bind(t1);
    a.addi(5, 5, 1);
    a.jmp(join);
    a.bind(t2);
    a.addi(6, 6, 1);
    a.bind(join);
    a.addi(2, 2, 8);
    a.andi(2, 2, 15);
    a.addi(7, 7, 1);
    a.slti(8, 7, 500);
    a.bne(8, 0, loop);
    a.halt();
    a.poke(0x9000, a.indexOf(t1));
    a.poke(0x9008, a.indexOf(t2));
    auto prog = std::make_shared<Program>(a.finish("jr"));
    Interpreter interp(prog);
    Trace t = interp.run(100000);
    ProfileResult prof = profileTrace(t, SimConfig::skylake());

    double worst = 0;
    for (const auto &[sidx, bp] : prof.branches)
        if (bp.exec > 400)
            worst = std::max(worst, bp.mispredictRatio());
    EXPECT_GT(worst, 0.9); // the alternating jr

    CrispOptions opts;
    auto picked = selectCriticalBranches(prof, opts);
    EXPECT_FALSE(picked.empty());
}

TEST(AutoTune, PicksBestThresholdAndNeverLoses)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    CrispOptions opts;
    AutoTuneResult r = autoTuneMissShare(
        *wl, SimConfig::skylake(), opts, 80'000, 100'000,
        {0.05, 0.01});
    EXPECT_EQ(r.ipcByThreshold.size(), 2u);
    EXPECT_GT(r.baselineIpc, 0.0);
    for (const auto &[t, ipc] : r.ipcByThreshold)
        EXPECT_LE(ipc, r.bestIpc);
    EXPECT_GT(r.bestSpeedup(), 1.0);
}

} // namespace
} // namespace crisp
