/**
 * @file
 * Integration tests for the cycle-level core: throughput bounds,
 * latency visibility, store-to-load forwarding, mispredict gating
 * and the CRISP scheduler's effect on a constructed pathology.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"

namespace crisp
{
namespace
{

Trace
traceOf(Assembler &a, uint64_t max_ops = 200000)
{
    auto prog = std::make_shared<Program>(a.finish("t"));
    Interpreter interp(prog);
    Trace t = interp.run(max_ops);
    return t;
}

CoreStats
simulate(const Trace &t, SimConfig cfg = SimConfig::skylake())
{
    Core core(t, cfg);
    return core.run();
}

TEST(Core, RetiresWholeTrace)
{
    Assembler a;
    a.movi(1, 0);
    auto loop = a.label();
    a.bind(loop);
    a.addi(1, 1, 1);
    a.slti(2, 1, 500);
    a.bne(2, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    CoreStats s = simulate(t);
    EXPECT_EQ(s.retired, t.size());
    EXPECT_GT(s.cycles, 0u);
}

TEST(Core, DependentChainBoundedByLatency)
{
    // A serial addi chain cannot exceed IPC 1 (1-cycle ALU ops).
    Assembler a;
    a.movi(1, 0);
    auto loop = a.label();
    a.bind(loop);
    for (int k = 0; k < 16; ++k)
        a.addi(1, 1, 1);
    a.slti(2, 1, 16 * 400);
    a.bne(2, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    CoreStats s = simulate(t);
    EXPECT_LT(s.ipc(), 1.35); // chain + loop overhead
    EXPECT_GT(s.ipc(), 0.8);
}

TEST(Core, IndependentWorkReachesWideIssue)
{
    // Eight independent accumulators: should exceed IPC 3.
    Assembler a;
    for (int r = 1; r <= 8; ++r)
        a.movi(RegId(r), 0);
    a.movi(10, 0);
    auto loop = a.label();
    a.bind(loop);
    for (int k = 0; k < 4; ++k)
        for (int r = 1; r <= 8; ++r)
            a.addi(RegId(r), RegId(r), 1);
    a.addi(10, 10, 1);
    a.slti(11, 10, 300);
    a.bne(11, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    CoreStats s = simulate(t);
    // Four ALU ports bound eight parallel 1-cycle chains.
    EXPECT_GT(s.ipc(), 2.5);
}

TEST(Core, AluPortLimitCapsThroughput)
{
    // Independent FP multiplies saturate the 4 ALU ports even with
    // 6-wide retire.
    Assembler a;
    for (int r = 1; r <= 12; ++r)
        a.movi(RegId(r), r);
    a.movi(20, 0);
    auto loop = a.label();
    a.bind(loop);
    for (int r = 1; r <= 12; ++r)
        a.fmul(RegId(r), RegId(r), RegId(r));
    a.addi(20, 20, 1);
    a.slti(21, 20, 400);
    a.bne(21, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    CoreStats s = simulate(t);
    // 12 FP + 3 overhead per iteration; >= 12/4 = 3 cycles on FP.
    EXPECT_LT(s.ipc(), 4.6);
}

TEST(Core, DramLatencyDominatesPointerChase)
{
    // Serial dependent loads over distinct lines: each costs a full
    // memory round trip.
    Assembler a;
    const int n = 400;
    // Chain: mem[a_i] = a_{i+1}; random-ish spacing.
    uint64_t base = 0x1000000;
    uint64_t addr = base;
    for (int i = 0; i < n; ++i) {
        uint64_t next = base + uint64_t((i * 7919) % n) * 4096 +
                        uint64_t(i) * 64 % 4096;
        next &= ~7ULL;
        a.poke(addr, next);
        addr = next;
    }
    a.movi(1, int64_t(base));
    a.movi(2, 0);
    auto loop = a.label();
    a.bind(loop);
    a.ld(1, 1, 0);
    a.addi(2, 2, 1);
    a.slti(3, 2, n - 2);
    a.bne(3, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    CoreStats s = simulate(t);
    double cycles_per_load = double(s.cycles) / double(n - 2);
    EXPECT_GT(cycles_per_load, 60.0); // far above ALU speeds
    EXPECT_GT(s.robHeadLoadStallCycles,
              s.cycles / 2); // memory-bound
}

TEST(Core, StoreToLoadForwardingBeatsDram)
{
    // ping-pong through one memory word: no DRAM trips after the
    // first, thanks to exact forwarding.
    Assembler a;
    a.movi(1, 0x500000);
    a.movi(2, 1);
    a.movi(3, 0);
    auto loop = a.label();
    a.bind(loop);
    a.st(1, 2, 0);
    a.ld(2, 1, 0);
    a.addi(2, 2, 1);
    a.addi(3, 3, 1);
    a.slti(4, 3, 500);
    a.bne(4, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    CoreStats s = simulate(t);
    EXPECT_GT(s.forwardedLoads, 400u);
    // Forwarded iterations are fast (~10 cycles each, not ~200).
    EXPECT_LT(double(s.cycles) / 500.0, 30.0);
}

TEST(Core, MispredictsGateFetch)
{
    // Data-random branch: compare runs with a predictable pattern.
    auto make = [](bool random) {
        Assembler a;
        uint64_t s = 12345;
        for (int i = 0; i < 512; ++i) {
            s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            a.poke(0x600000 + i * 8,
                   random ? ((s >> 30) & 1) : (i & 1));
        }
        a.movi(1, 0x600000);
        a.movi(2, 0);
        a.movi(5, 0);
        auto loop = a.label();
        auto skip = a.label();
        a.bind(loop);
        a.shli(3, 2, 3);
        a.andi(3, 3, 511 * 8);
        a.ldx(4, 1, 3);
        a.beq(4, 0, skip);
        a.addi(5, 5, 3);
        a.bind(skip);
        a.addi(2, 2, 1);
        a.slti(6, 2, 2000);
        a.bne(6, 0, loop);
        a.halt();
        return a;
    };
    Assembler ar = make(true);
    Assembler ap = make(false);
    Trace tr = traceOf(ar);
    Trace tp = traceOf(ap);
    CoreStats sr = simulate(tr);
    CoreStats sp = simulate(tp);
    EXPECT_GT(sr.frontend.condMispredicts,
              sp.frontend.condMispredicts * 4);
    EXPECT_LT(sr.ipc(), sp.ipc());
    EXPECT_GT(sr.frontend.branchStallCycles,
              sp.frontend.branchStallCycles);
}

TEST(Core, CrispPriorityAcceleratesConstructedPathology)
{
    // Serial chase + parallel miss-dependent work; tag the chase
    // slice by hand and compare schedulers.
    Assembler a;
    const uint32_t n = 4096;
    uint64_t base = 0x1000000;
    uint64_t s = 777;
    for (uint32_t i = 0; i < n; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        a.poke(base + uint64_t(i) * 8, (s >> 16) % n);
    }
    for (uint32_t i = 0; i < 64; ++i)
        a.poke(0x200000 + i * 8, i + 1);

    a.movi(1, int64_t(base));  // chase base
    a.movi(2, 0x200000);       // work table
    a.movi(3, 0);              // cur index
    a.movi(4, 0);              // counter
    auto loop = a.label();
    a.bind(loop);
    uint32_t slice_begin = a.here();
    a.shli(5, 3, 3);           // slice: index -> offset
    a.ldx(3, 1, 5);            // delinquent serial load
    uint32_t slice_end = a.here();
    // Parallel work off the loaded value.
    for (int k = 0; k < 10; ++k) {
        RegId rk = RegId(20 + k);
        a.xori(rk, 3, k * 13 + 1);
        a.andi(rk, rk, 0x1f8);
        a.ldx(6, 2, rk);
        a.fmul(6, 6, 3);
        a.stx(2, rk, 6);
    }
    a.addi(4, 4, 1);
    a.slti(7, 4, 600);
    a.bne(7, 0, loop);
    a.halt();

    Program prog = a.finish("pathology");
    // Tag the slice.
    for (uint32_t i = slice_begin; i < slice_end + 1; ++i) {
        prog.code[i].critical = true;
        prog.code[i].size += 1;
    }
    prog.layout();
    auto shared = std::make_shared<Program>(std::move(prog));
    Interpreter interp(shared);
    Trace t = interp.run(200000);

    SimConfig base_cfg = SimConfig::skylake();
    CoreStats sb = simulate(t, base_cfg);
    SimConfig crisp_cfg = base_cfg;
    crisp_cfg.scheduler = SchedulerPolicy::CrispPriority;
    CoreStats sc = simulate(t, crisp_cfg);

    EXPECT_GT(sc.issuedPrioritized, 0u);
    EXPECT_GT(sc.ipc(), sb.ipc()); // priority must help here
}

TEST(Core, StatsDerivedMetrics)
{
    CoreStats s;
    EXPECT_EQ(s.ipc(), 0.0);
    s.cycles = 100;
    s.retired = 250;
    EXPECT_DOUBLE_EQ(s.ipc(), 2.5);
    s.l1i.misses = 5;
    EXPECT_DOUBLE_EQ(s.icacheMpki(), 20.0);
    s.llc.misses = 10;
    EXPECT_DOUBLE_EQ(s.llcMpki(), 40.0);
}

} // namespace
} // namespace crisp
