/**
 * @file
 * Unit and property tests for the age-matrix scheduler primitive —
 * the paper's §4.2 circuit. The central property: under arbitrary
 * allocate/free sequences (RAND slot reuse included), selectOldest()
 * always returns the candidate with the smallest allocation
 * timestamp.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/age_matrix.h"

namespace crisp
{
namespace
{

TEST(SlotVector, BasicOps)
{
    SlotVector v(100);
    EXPECT_FALSE(v.any());
    v.set(3);
    v.set(77);
    EXPECT_TRUE(v.test(3));
    EXPECT_TRUE(v.test(77));
    EXPECT_FALSE(v.test(4));
    EXPECT_TRUE(v.any());
    v.clear(3);
    EXPECT_FALSE(v.test(3));
    v.clearAll();
    EXPECT_FALSE(v.any());
    v.setAll();
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(99));
}

TEST(SlotVector, Disjoint)
{
    SlotVector a(64), b(64);
    a.set(5);
    b.set(6);
    EXPECT_TRUE(a.disjoint(b));
    b.set(5);
    EXPECT_FALSE(a.disjoint(b));
}

TEST(AgeMatrix, SimpleOrder)
{
    AgeMatrix age(8);
    age.allocate(3);
    age.allocate(1);
    age.allocate(6);
    SlotVector cand(8);
    cand.set(3);
    cand.set(1);
    cand.set(6);
    EXPECT_EQ(age.selectOldest(cand), 3);
    cand.clear(3);
    EXPECT_EQ(age.selectOldest(cand), 1);
    cand.clear(1);
    EXPECT_EQ(age.selectOldest(cand), 6);
    cand.clear(6);
    EXPECT_EQ(age.selectOldest(cand), -1);
}

TEST(AgeMatrix, SlotReuseMakesEntryYoungest)
{
    AgeMatrix age(4);
    age.allocate(0);
    age.allocate(1);
    age.allocate(2);
    // Slot 0 freed and re-allocated: now the youngest.
    age.allocate(0);
    SlotVector cand(4);
    cand.set(0);
    cand.set(1);
    cand.set(2);
    EXPECT_EQ(age.selectOldest(cand), 1);
}

TEST(AgeMatrix, NonCandidatesDoNotInterfere)
{
    AgeMatrix age(8);
    age.allocate(2); // oldest but not a candidate
    age.allocate(5);
    age.allocate(7);
    SlotVector cand(8);
    cand.set(5);
    cand.set(7);
    EXPECT_EQ(age.selectOldest(cand), 5);
}

/**
 * Property: a reference model tracking allocation timestamps agrees
 * with the matrix for random allocate/free/candidate sequences.
 */
class AgeMatrixPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(AgeMatrixPropertyTest, MatchesTimestampReference)
{
    const unsigned slots = 48;
    AgeMatrix age(slots);
    std::vector<int64_t> stamp(slots, -1); // -1 = free
    int64_t clock = 0;
    uint64_t rng = uint64_t(GetParam()) * 0x9e3779b97f4a7c15ULL + 1;
    auto rnd = [&rng](uint64_t bound) {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        return (rng * 0x2545f4914f6cdd1dULL) % bound;
    };

    for (int step = 0; step < 3000; ++step) {
        unsigned action = unsigned(rnd(3));
        if (action == 0) {
            // Allocate into a random free slot if any.
            std::vector<unsigned> free_slots;
            for (unsigned s = 0; s < slots; ++s)
                if (stamp[s] < 0)
                    free_slots.push_back(s);
            if (!free_slots.empty()) {
                unsigned s = free_slots[rnd(free_slots.size())];
                age.allocate(s);
                stamp[s] = clock++;
            }
        } else if (action == 1) {
            // Free a random occupied slot.
            std::vector<unsigned> used;
            for (unsigned s = 0; s < slots; ++s)
                if (stamp[s] >= 0)
                    used.push_back(s);
            if (!used.empty())
                stamp[used[rnd(used.size())]] = -1;
        } else {
            // Query: random candidate subset of occupied slots.
            SlotVector cand(slots);
            int64_t best_stamp = INT64_MAX;
            int best_slot = -1;
            for (unsigned s = 0; s < slots; ++s) {
                if (stamp[s] >= 0 && rnd(2)) {
                    cand.set(s);
                    if (stamp[s] < best_stamp) {
                        best_stamp = stamp[s];
                        best_slot = int(s);
                    }
                }
            }
            ASSERT_EQ(age.selectOldest(cand), best_slot)
                << "at step " << step;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgeMatrixPropertyTest,
                         ::testing::Range(1, 9));

/**
 * The hardware circuit of §4.2, verbatim: an N×N bit matrix where
 * older[r][c] means "r is older than c". allocate(s) clears row s
 * (s is younger than everyone) and sets column s in every occupied
 * row (everyone current is older than s) — O(n²) per query, used
 * here only as the executable specification. The production
 * AgeMatrix replaces the matrix with O(1) allocation stamps; this
 * churn test pins the two as behaviorally identical under heavy
 * random slot reuse, for both selectOldest() and isOldest().
 */
class NaiveAgeMatrix
{
  public:
    explicit NaiveAgeMatrix(unsigned slots)
        : slots_(slots), older_(slots, std::vector<bool>(slots)),
          occupied_(slots)
    {
    }

    void allocate(unsigned slot)
    {
        for (unsigned c = 0; c < slots_; ++c)
            older_[slot][c] = false;
        for (unsigned r = 0; r < slots_; ++r)
            if (occupied_[r])
                older_[r][slot] = true;
        occupied_[slot] = true;
    }

    void release(unsigned slot) { occupied_[slot] = false; }

    bool isOldest(unsigned slot, const SlotVector &cand) const
    {
        for (unsigned r = 0; r < slots_; ++r)
            if (cand.test(r) && older_[r][slot])
                return false;
        return true;
    }

    int selectOldest(const SlotVector &cand) const
    {
        for (unsigned s = 0; s < slots_; ++s)
            if (cand.test(s) && isOldest(s, cand))
                return int(s);
        return -1;
    }

  private:
    unsigned slots_;
    std::vector<std::vector<bool>> older_;
    std::vector<bool> occupied_;
};

class AgeMatrixChurnTest : public ::testing::TestWithParam<int>
{
};

TEST_P(AgeMatrixChurnTest, MatchesNaiveBitMatrix)
{
    const unsigned slots = 64;
    AgeMatrix age(slots);
    NaiveAgeMatrix naive(slots);
    std::vector<bool> occupied(slots, false);
    uint64_t rng = uint64_t(GetParam()) * 0xd1342543de82ef95ULL + 7;
    auto rnd = [&rng](uint64_t bound) {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        return (rng * 0x2545f4914f6cdd1dULL) % bound;
    };

    for (int step = 0; step < 4000; ++step) {
        unsigned s = unsigned(rnd(slots));
        if (!occupied[s] && rnd(3) != 0) {
            age.allocate(s);
            naive.allocate(s);
            occupied[s] = true;
        } else if (occupied[s] && rnd(2) != 0) {
            // AgeMatrix needs no explicit free; mirror the RS
            // releasing the slot back to the free list.
            naive.release(s);
            occupied[s] = false;
        }

        SlotVector cand(slots);
        for (unsigned i = 0; i < slots; ++i)
            if (occupied[i] && rnd(2))
                cand.set(i);
        ASSERT_EQ(age.selectOldest(cand), naive.selectOldest(cand))
            << "at step " << step;
        if (cand.any()) {
            unsigned probe = unsigned(age.selectOldest(cand));
            EXPECT_TRUE(age.isOldest(probe, cand));
            EXPECT_TRUE(naive.isOldest(probe, cand));
            // A random other candidate agrees between the models.
            unsigned other = unsigned(rnd(slots));
            if (cand.test(other)) {
                ASSERT_EQ(age.isOldest(other, cand),
                          naive.isOldest(other, cand))
                    << "slot " << other << " at step " << step;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgeMatrixChurnTest,
                         ::testing::Range(1, 7));

} // namespace
} // namespace crisp
