/**
 * @file
 * Parameterized tests over every registered workload proxy: builds,
 * executes, train/ref code identity (the §5.1 requirement that
 * profiling and evaluation share one binary), and determinism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "vm/interpreter.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

class WorkloadTest
    : public ::testing::TestWithParam<WorkloadInfo>
{
};

TEST_P(WorkloadTest, BuildsNonTrivialProgram)
{
    Program p = GetParam().build(InputSet::Train);
    EXPECT_GT(p.code.size(), 10u);
    EXPECT_FALSE(p.dataInit.empty());
    EXPECT_EQ(p.name, GetParam().name);
    // Layout is consistent.
    EXPECT_EQ(p.indexOfPc(p.code[0].pc), 0);
}

TEST_P(WorkloadTest, RunsLongWithoutHalting)
{
    auto prog =
        std::make_shared<Program>(GetParam().build(InputSet::Ref));
    Interpreter interp(prog);
    Trace t = interp.run(30000);
    EXPECT_EQ(t.size(), 30000u);
    EXPECT_FALSE(interp.halted()) << "trace budget exhausted the "
                                     "workload; enlarge its inputs";
}

TEST_P(WorkloadTest, TrainAndRefShareCode)
{
    Program train = GetParam().build(InputSet::Train);
    Program ref = GetParam().build(InputSet::Ref);
    ASSERT_EQ(train.code.size(), ref.code.size());
    for (size_t i = 0; i < train.code.size(); ++i) {
        EXPECT_EQ(train.code[i].op, ref.code[i].op) << "at " << i;
        EXPECT_EQ(train.code[i].dst, ref.code[i].dst);
        EXPECT_EQ(train.code[i].src1, ref.code[i].src1);
        EXPECT_EQ(train.code[i].src2, ref.code[i].src2);
        EXPECT_EQ(train.code[i].imm, ref.code[i].imm);
        EXPECT_EQ(train.code[i].target, ref.code[i].target);
    }
}

TEST_P(WorkloadTest, TrainAndRefDataDiffer)
{
    Program train = GetParam().build(InputSet::Train);
    Program ref = GetParam().build(InputSet::Ref);
    EXPECT_NE(train.dataInit, ref.dataInit)
        << "inputs must differ between profiling and evaluation";
}

TEST_P(WorkloadTest, DeterministicBuild)
{
    Program a = GetParam().build(InputSet::Ref);
    Program b = GetParam().build(InputSet::Ref);
    ASSERT_EQ(a.code.size(), b.code.size());
    EXPECT_EQ(a.dataInit, b.dataInit);
}

TEST_P(WorkloadTest, ExercisesMemory)
{
    auto prog =
        std::make_shared<Program>(GetParam().build(InputSet::Ref));
    Interpreter interp(prog);
    Trace t = interp.run(20000);
    uint64_t loads = 0, stores = 0;
    for (const auto &op : t.ops) {
        loads += op.isLoad();
        stores += op.isStore();
    }
    EXPECT_GT(loads, 200u);
    (void)stores; // some proxies are load-only by design
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest,
    ::testing::ValuesIn(workloadRegistry()),
    [](const ::testing::TestParamInfo<WorkloadInfo> &pinfo) {
        return pinfo.param.name;
    });

TEST(WorkloadRegistry, LookupByName)
{
    EXPECT_NE(findWorkload("mcf"), nullptr);
    EXPECT_NE(findWorkload("pointer_chase"), nullptr);
    EXPECT_EQ(findWorkload("no_such_workload"), nullptr);
    EXPECT_EQ(workloadNames().size(), workloadRegistry().size());
    EXPECT_GE(workloadNames().size(), 16u);
}

TEST(WorkloadHelpers, RandomPermutationIsPermutation)
{
    Rng rng(123);
    auto perm = randomPermutation(1000, rng);
    std::vector<bool> seen(1000, false);
    for (uint32_t v : perm) {
        ASSERT_LT(v, 1000u);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(WorkloadHelpers, RngDeterministicNonZero)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng zero(0); // seed 0 must not collapse
    EXPECT_NE(zero.next(), 0u);
}

TEST(WorkloadHelpers, HotColdOffsetSplit)
{
    // Directly execute a tiny program using the helper and check
    // the hot/cold address distribution.
    Assembler a;
    a.movi(1, 12345);
    a.movi(5, 0x300000);
    a.movi(6, 0);
    auto loop = a.label();
    a.bind(loop);
    a.muli(1, 1, 6364136223846793005LL);
    a.addi(1, 1, 1442695040888963407LL);
    a.shri(2, 1, 17);
    emitHotColdOffset(a, 3, 2, 0xffff, (1 << 23) - 1, 10, 11);
    a.shli(4, 6, 3);
    a.stx(5, 4, 3);
    a.addi(6, 6, 1);
    a.slti(7, 6, 2000);
    a.bne(7, 0, loop);
    a.halt();
    auto prog = std::make_shared<Program>(a.finish("hc"));
    Interpreter interp(prog);
    interp.run(1000000);
    unsigned hot = 0, cold = 0;
    for (int i = 0; i < 2000; ++i) {
        uint64_t off = interp.memory().read64(0x300000 + i * 8);
        EXPECT_EQ(off & 7, 0u); // 8-byte aligned
        EXPECT_LT(off, uint64_t(1) << 23);
        (off < 0x10000 ? hot : cold) += 1;
    }
    // Nominal split 75/25; allow slack.
    EXPECT_GT(hot, 1300u);
    EXPECT_GT(cold, 300u);
}

} // namespace
} // namespace crisp
