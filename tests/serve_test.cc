/**
 * @file
 * Tests for the crisp_serve sweep-server subsystem (DESIGN.md §15):
 * sweep expansion and validation (unknown workloads/variants,
 * server-owned flags, cli.cc rejection verbatim), stable job IDs,
 * protocol parse/reject paths, queue backpressure and priority
 * order, cancel-before-start vs cancel-in-flight, timeout → retry →
 * fail accounting, deadlock retries, graceful shutdown requeueing,
 * result-file layout, ArtifactCache hit/miss/in-flight stats, the
 * socket transport end to end, and loopback byte-identity: a job run
 * through the full server machinery must produce the same stats JSON
 * as a direct runner invocation, with later requests hitting the
 * shared cache.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cpu/core.h"
#include "serve/job_queue.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "sim/artifact_cache.h"
#include "sim/cancel.h"
#include "telemetry/json.h"

namespace fs = std::filesystem;

namespace crisp
{
namespace
{

/** A sweep over @p workloads x @p variants with tiny trace sizes. */
SweepRequest
tinySweep(std::vector<std::string> workloads,
          std::vector<std::string> variants)
{
    SweepRequest req;
    req.workloads = std::move(workloads);
    req.variants = std::move(variants);
    req.trainOps = 5'000;
    req.refOps = 10'000;
    return req;
}

/** Collects emit() lines from handleRequestLine. */
struct Emitted
{
    std::vector<std::string> lines;
    std::function<void(const std::string &)> sink()
    {
        return [this](const std::string &l) { lines.push_back(l); };
    }
    /** Parses line @p i (ADD_FAILUREs on malformed JSON). */
    JsonValue json(size_t i) const
    {
        JsonValue v;
        std::string err;
        EXPECT_LT(i, lines.size());
        if (i < lines.size()) {
            EXPECT_TRUE(parseJson(lines[i], v, &err))
                << lines[i] << ": " << err;
        }
        return v;
    }
};

/** A runner whose behaviour the test scripts per-call. */
struct FakeRunner
{
    std::mutex m;
    std::condition_variable cv;
    bool release = false;          ///< lets blocking calls finish
    std::atomic<int> calls{0};
    std::atomic<int> running{0};
    int deadlockUntilAttempt = 0;  ///< throw deadlock while calls <= N

    /** Blocks until release or the token fires, then reports. */
    JobOutcome operator()(const JobSpec &, ArtifactCache &,
                          const CancelToken &token)
    {
        int call = ++calls;
        ++running;
        cv.notify_all();
        {
            std::unique_lock<std::mutex> lk(m);
            while (!release && !token.cancelled())
                cv.wait_for(lk, std::chrono::milliseconds(1));
        }
        --running;
        token.throwIfCancelled("fake job");
        if (call <= deadlockUntilAttempt)
            throw SimDeadlockError(100, 0, 1000, "fake");
        JobOutcome out;
        out.ipc = 1.0;
        out.statsJson = "{}\n";
        return out;
    }

    SweepServer::JobRunner runner()
    {
        return [this](const JobSpec &s, ArtifactCache &c,
                      const CancelToken &t) { return (*this)(s, c, t); };
    }

    void releaseAll()
    {
        std::lock_guard<std::mutex> lk(m);
        release = true;
        cv.notify_all();
    }

    /** Waits until @p n calls are concurrently inside the runner. */
    void awaitRunning(int n)
    {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return running.load() >= n; });
    }
};

/** An instantly-succeeding runner. */
SweepServer::JobRunner
instantRunner()
{
    return [](const JobSpec &, ArtifactCache &, const CancelToken &) {
        JobOutcome out;
        out.ipc = 2.0;
        out.statsJson = "{}\n";
        return out;
    };
}

JobState
stateOf(SweepServer &server, const std::string &id)
{
    return server.status({id})[0].state;
}

/** Spins until @p id reaches @p want (drain() only waits for
 *  all-terminal, not a specific state). */
void
awaitState(SweepServer &server, const std::string &id, JobState want)
{
    for (int spin = 0; spin < 5000; ++spin) {
        if (stateOf(server, id) == want)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "job " << id << " never reached "
           << jobStateName(want) << " (now "
           << jobStateName(stateOf(server, id)) << ")";
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/** Unique per-test scratch directory, removed on destruction. */
struct ScratchDir
{
    fs::path path;
    explicit ScratchDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               (tag + "_" +
                std::to_string(
                    std::chrono::steady_clock::now()
                        .time_since_epoch()
                        .count())))
    {
        fs::create_directories(path);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

// ---------------------------------------------------------------
// Sweep expansion
// ---------------------------------------------------------------

TEST(JobIdTest, StableContentAddress)
{
    std::string id = jobIdFor("wl=mcf;variant=crisp");
    EXPECT_EQ(id, jobIdFor("wl=mcf;variant=crisp"));
    EXPECT_NE(id, jobIdFor("wl=mcf;variant=ooo"));
    ASSERT_EQ(id.size(), 18u);
    EXPECT_EQ(id.rfind("j-", 0), 0u);
    EXPECT_EQ(id.find_first_not_of("0123456789abcdef", 2),
              std::string::npos);
}

TEST(ExpandSweepTest, FullGridWithDistinctIds)
{
    SweepRequest req =
        tinySweep({"pointer_chase", "mcf"}, {"ooo", "crisp"});
    req.configs = {{}, {"--rob", "128"}};
    std::vector<JobSpec> specs;
    std::string err;
    ASSERT_TRUE(expandSweep(req, specs, &err)) << err;
    ASSERT_EQ(specs.size(), 8u); // 2 workloads x 2 variants x 2 cfgs

    std::set<std::string> ids;
    for (const JobSpec &s : specs) {
        ids.insert(s.id);
        EXPECT_EQ(s.trainOps, 5'000u);
        EXPECT_EQ(s.refOps, 10'000u);
    }
    EXPECT_EQ(ids.size(), 8u);
}

TEST(ExpandSweepTest, DuplicateGridPointsCollapse)
{
    SweepRequest req = tinySweep({"pointer_chase"}, {"ooo"});
    req.configs = {{}, {}}; // the same config twice
    std::vector<JobSpec> specs;
    ASSERT_TRUE(expandSweep(req, specs, nullptr));
    EXPECT_EQ(specs.size(), 1u);
}

TEST(ExpandSweepTest, RejectsUnknownWorkload)
{
    std::vector<JobSpec> specs;
    std::string err;
    EXPECT_FALSE(expandSweep(tinySweep({"not_a_workload"}, {"ooo"}),
                             specs, &err));
    EXPECT_NE(err.find("unknown workload"), std::string::npos);
    EXPECT_TRUE(specs.empty());
}

TEST(ExpandSweepTest, RejectsUnknownVariant)
{
    std::vector<JobSpec> specs;
    std::string err;
    EXPECT_FALSE(expandSweep(
        tinySweep({"pointer_chase"}, {"fancy"}), specs, &err));
    EXPECT_NE(err.find("unknown variant"), std::string::npos);
    // An IBDA size outside {1K,8K,64K,inf} is a variant error too.
    EXPECT_FALSE(expandSweep(
        tinySweep({"pointer_chase"}, {"ibda-2K"}), specs, &err));
}

TEST(ExpandSweepTest, RejectsServerOwnedFlags)
{
    for (const std::string &tok :
         {std::string("--stats-json"), std::string("--workload"),
          std::string("--jobs=4"), std::string("--scheduler")}) {
        SweepRequest req = tinySweep({"pointer_chase"}, {"ooo"});
        req.configs = {{tok, "x"}};
        std::vector<JobSpec> specs;
        std::string err;
        EXPECT_FALSE(expandSweep(req, specs, &err)) << tok;
        EXPECT_NE(err.find("server-owned"), std::string::npos)
            << err;
    }
}

TEST(ExpandSweepTest, RejectsInvalidConfigViaCliValidation)
{
    // cli.cc's own validation, verbatim: flags crisp_sim would
    // refuse are refused at submit time with the same message.
    SweepRequest bad = tinySweep({"pointer_chase"}, {"ooo"});
    bad.configs = {{"--frobnicate"}};
    std::vector<JobSpec> specs;
    std::string err;
    EXPECT_FALSE(expandSweep(bad, specs, &err));
    EXPECT_NE(err.find("invalid config"), std::string::npos);

    // Contradictory values (a zero-op run) die in parseCli too.
    // No sweep-level train_ops here: it would append a later
    // --train that overrides the config's own token.
    SweepRequest zero;
    zero.workloads = {"pointer_chase"};
    zero.variants = {"ooo"};
    zero.configs = {{"--train", "0"}};
    EXPECT_FALSE(expandSweep(zero, specs, &err));
    EXPECT_NE(err.find("invalid config"), std::string::npos) << err;
}

// ---------------------------------------------------------------
// Protocol parse/reject
// ---------------------------------------------------------------

TEST(ProtocolTest, MalformedRequestsNeverThrow)
{
    SweepServer server({}, instantRunner());
    Emitted out;
    handleRequestLine(server, "this is not json", out.sink());
    handleRequestLine(server, "[1,2,3]", out.sink());
    handleRequestLine(server, "{\"op\":42}", out.sink());
    handleRequestLine(server, "{\"op\":\"warp\"}", out.sink());
    ASSERT_EQ(out.lines.size(), 4u);
    for (size_t i = 0; i < out.lines.size(); ++i) {
        JsonValue v = out.json(i);
        ASSERT_TRUE(v.has("ok"));
        EXPECT_FALSE(v.at("ok").boolean) << out.lines[i];
    }
    EXPECT_NE(out.lines[3].find("unknown op"), std::string::npos);
}

TEST(ProtocolTest, SubmitRefusesWrongProtocolVersion)
{
    SweepServer server({}, instantRunner());
    server.start();
    Emitted out;
    handleRequestLine(server,
                      "{\"op\":\"submit\",\"proto\":99,"
                      "\"workloads\":[\"pointer_chase\"],"
                      "\"variants\":[\"ooo\"]}",
                      out.sink());
    handleRequestLine(server,
                      "{\"op\":\"submit\","
                      "\"workloads\":[\"pointer_chase\"],"
                      "\"variants\":[\"ooo\"]}",
                      out.sink());
    ASSERT_EQ(out.lines.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_FALSE(out.json(i).at("ok").boolean);
        EXPECT_NE(out.lines[i].find("protocol version"),
                  std::string::npos);
    }
    server.shutdown(false);
}

TEST(ProtocolTest, LoopbackSubmitStatusCancelDrain)
{
    ServeConfig cfg;
    cfg.jobs = 2;
    SweepServer server(cfg, instantRunner());
    server.start();
    Emitted out;

    handleRequestLine(server,
                      "{\"op\":\"submit\",\"proto\":1,"
                      "\"workloads\":[\"pointer_chase\"],"
                      "\"variants\":[\"ooo\",\"crisp\"],"
                      "\"train_ops\":5000,\"ref_ops\":10000}",
                      out.sink());
    JsonValue sub = out.json(0);
    ASSERT_TRUE(sub.at("ok").boolean) << out.lines[0];
    ASSERT_EQ(sub.at("jobs").elements.size(), 2u);
    EXPECT_EQ(int(sub.at("fresh").number), 2);
    std::string id = sub.at("jobs").elements[0].at("id").text;

    handleRequestLine(server, "{\"op\":\"drain\"}", out.sink());
    JsonValue drained = out.json(1);
    EXPECT_TRUE(drained.at("ok").boolean);
    EXPECT_EQ(int(drained.at("done").number), 2);

    // stream on a finished job replays its full event history.
    handleRequestLine(server,
                      "{\"op\":\"stream\",\"job\":\"" + id + "\"}",
                      out.sink());
    size_t streamed = out.lines.size() - 2;
    ASSERT_GE(streamed, 3u); // queued, running, result, end
    EXPECT_NE(out.lines.back().find("\"event\":\"end\""),
              std::string::npos);

    // Cancelling a done job is a no-op; unknown jobs are flagged.
    Emitted c;
    handleRequestLine(server,
                      "{\"op\":\"cancel\",\"jobs\":[\"" + id +
                          "\",\"j-0000000000000000\"]}",
                      c.sink());
    JsonValue cj = c.json(0);
    ASSERT_EQ(cj.at("results").elements.size(), 2u);
    EXPECT_FALSE(cj.at("results").elements[0].at("cancelled").boolean);
    EXPECT_EQ(cj.at("results").elements[0].at("state").text, "done");
    EXPECT_EQ(cj.at("results").elements[1].at("error").text,
              "unknown job");

    // status for an unknown ID answers instead of erroring.
    Emitted s;
    handleRequestLine(
        server, "{\"op\":\"status\",\"jobs\":[\"nope\"]}", s.sink());
    EXPECT_EQ(s.json(0).at("jobs").elements[0].at("error").text,
              "unknown job");
    server.shutdown(false);
}

// ---------------------------------------------------------------
// Job queue
// ---------------------------------------------------------------

TEST(JobQueueTest, BackpressureBlocksUntilPopOrClose)
{
    JobQueue q(1);
    EXPECT_TRUE(q.push({"a", 0, 0, {}}));

    std::atomic<bool> second{false};
    std::thread pusher([&] {
        EXPECT_TRUE(q.push({"b", 0, 0, {}}));
        second = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(second.load()); // full queue blocks the pusher

    auto a = q.pop();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->jobId, "a");
    pusher.join();
    EXPECT_TRUE(second.load());

    // Retries bypass the bound even when full.
    EXPECT_TRUE(q.push({"c", 0, 0, {}}, true));
    EXPECT_EQ(q.depth(), 2u);

    q.close();
    EXPECT_FALSE(q.push({"d", 0, 0, {}}));
    EXPECT_TRUE(q.pop().has_value());  // drains b
    EXPECT_TRUE(q.pop().has_value());  // drains c
    EXPECT_FALSE(q.pop().has_value()); // closed and empty
}

TEST(JobQueueTest, PriorityThenArrivalOrder)
{
    JobQueue q(16);
    q.push({"low", -1, 0, {}});
    q.push({"first", 5, 0, {}});
    q.push({"second", 5, 0, {}});
    q.push({"mid", 2, 0, {}});
    EXPECT_EQ(q.pop()->jobId, "first");
    EXPECT_EQ(q.pop()->jobId, "second");
    EXPECT_EQ(q.pop()->jobId, "mid");
    EXPECT_EQ(q.pop()->jobId, "low");
}

TEST(JobQueueTest, NotBeforeDelaysEligibility)
{
    JobQueue q(16);
    auto now = std::chrono::steady_clock::now();
    q.push({"later", 9, 0, now + std::chrono::milliseconds(30)});
    q.push({"now", 0, 0, {}});
    // The backoff entry outranks "now" but is not yet eligible.
    EXPECT_EQ(q.pop()->jobId, "now");
    auto t0 = std::chrono::steady_clock::now();
    auto later = q.pop(); // sleeps until the entry matures
    ASSERT_TRUE(later.has_value());
    EXPECT_EQ(later->jobId, "later");
    EXPECT_GE(std::chrono::steady_clock::now() - t0,
              std::chrono::milliseconds(5));
}

TEST(JobQueueTest, RemoveCancelsQueuedEntry)
{
    JobQueue q(16);
    q.push({"a", 0, 0, {}});
    q.push({"b", 0, 0, {}});
    EXPECT_TRUE(q.remove("a"));
    EXPECT_FALSE(q.remove("a"));
    EXPECT_EQ(q.pop()->jobId, "b");
}

// ---------------------------------------------------------------
// Cancel / timeout / retry semantics
// ---------------------------------------------------------------

TEST(SweepServerTest, CancelBeforeStartVsCancelInFlight)
{
    FakeRunner fake;
    ServeConfig cfg;
    cfg.jobs = 1; // one worker: the second job must wait queued
    SweepServer server(cfg, fake.runner());
    server.start();

    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(
        tinySweep({"pointer_chase"}, {"ooo", "crisp"}), sub, &err))
        << err;
    ASSERT_EQ(sub.jobs.size(), 2u);
    const std::string first = sub.jobs[0].id;
    const std::string second = sub.jobs[1].id;

    fake.awaitRunning(1);
    EXPECT_EQ(stateOf(server, first), JobState::Running);
    EXPECT_EQ(stateOf(server, second), JobState::Queued);

    // Queued job: cancelled immediately, runner never sees it.
    auto r2 = server.cancel({second});
    ASSERT_EQ(r2.size(), 1u);
    EXPECT_TRUE(r2[0].cancelled);
    EXPECT_EQ(stateOf(server, second), JobState::Cancelled);
    EXPECT_EQ(server.status({second})[0].error,
              "cancelled before start");
    EXPECT_EQ(server.status({second})[0].attempts, 0);

    // Running job: the token fires; the worker finalizes it.
    auto r1 = server.cancel({first});
    EXPECT_TRUE(r1[0].cancelled);
    awaitState(server, first, JobState::Cancelled);
    EXPECT_EQ(server.status({first})[0].attempts, 1);

    EXPECT_EQ(fake.calls.load(), 1); // the cancelled-queued job never ran
    server.shutdown(false);
}

TEST(SweepServerTest, TimeoutRetriesThenFails)
{
    FakeRunner fake; // never released: every attempt must time out
    ServeConfig cfg;
    cfg.jobs = 1;
    SweepServer server(cfg, fake.runner());
    server.start();

    SweepRequest req = tinySweep({"pointer_chase"}, {"ooo"});
    req.timeoutMs = 25;
    req.timeoutSet = true;
    req.maxRetries = 2;
    req.retriesSet = true;
    req.retryBackoffMs = 1;
    req.backoffSet = true;
    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(req, sub, &err)) << err;
    const std::string id = sub.jobs[0].id;

    awaitState(server, id, JobState::Failed);
    JobStatus st = server.status({id})[0];
    EXPECT_EQ(st.attempts, 3); // 1 try + 2 retries
    EXPECT_NE(st.error.find("timed out"), std::string::npos);
    EXPECT_NE(st.error.find("attempt 3 of 3"), std::string::npos);

    std::string metrics = server.metricsJson();
    EXPECT_NE(metrics.find("\"timeouts\": 3"), std::string::npos)
        << metrics;
    EXPECT_NE(metrics.find("\"retries\": 2"), std::string::npos);
    EXPECT_NE(metrics.find("\"failed\": 1"), std::string::npos);
    server.shutdown(false);
}

TEST(SweepServerTest, DeadlockRetriesThenSucceeds)
{
    FakeRunner fake;
    fake.release = true;          // attempts return immediately...
    fake.deadlockUntilAttempt = 1; // ...but the first one deadlocks
    ServeConfig cfg;
    cfg.jobs = 1;
    SweepServer server(cfg, fake.runner());
    server.start();

    SweepRequest req = tinySweep({"pointer_chase"}, {"ooo"});
    req.maxRetries = 2;
    req.retriesSet = true;
    req.retryBackoffMs = 1;
    req.backoffSet = true;
    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(req, sub, &err)) << err;
    const std::string id = sub.jobs[0].id;

    awaitState(server, id, JobState::Done);
    EXPECT_EQ(server.status({id})[0].attempts, 2);
    std::string metrics = server.metricsJson();
    EXPECT_NE(metrics.find("\"deadlocks\": 1"), std::string::npos);
    EXPECT_NE(metrics.find("\"retries\": 1"), std::string::npos);
    server.shutdown(false);
}

TEST(SweepServerTest, FatalErrorsFailWithoutRetry)
{
    ServeConfig cfg;
    cfg.jobs = 1;
    cfg.defaultMaxRetries = 5;
    SweepServer server(
        cfg, [](const JobSpec &, ArtifactCache &,
                const CancelToken &) -> JobOutcome {
            throw std::runtime_error("config exploded");
        });
    server.start();
    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(tinySweep({"pointer_chase"}, {"ooo"}),
                              sub, &err));
    awaitState(server, sub.jobs[0].id, JobState::Failed);
    JobStatus st = server.status({sub.jobs[0].id})[0];
    EXPECT_EQ(st.attempts, 1); // fatal = no retries
    EXPECT_EQ(st.error, "config exploded");
    server.shutdown(false);
}

TEST(SweepServerTest, ShutdownRequeuesNeverStartedJobs)
{
    FakeRunner fake;
    ServeConfig cfg;
    cfg.jobs = 1;
    SweepServer server(cfg, fake.runner());
    server.start();

    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(
        tinySweep({"pointer_chase"},
                  {"ooo", "crisp", "ibda-8K", "ibda-inf"}),
        sub, &err));
    fake.awaitRunning(1);

    // Shut down without draining while the first job is still in
    // flight: the queue is emptied (never-started jobs become
    // Requeued), then shutdown blocks on the in-flight job — which
    // we release once at least one job has been requeued.
    std::thread stopper([&] { server.shutdown(false); });
    for (int spin = 0; spin < 5000; ++spin) {
        size_t requeued = 0;
        for (const JobStatus &s : server.status({}))
            requeued += s.state == JobState::Requeued;
        if (requeued > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    fake.releaseAll();
    stopper.join();
    EXPECT_FALSE(server.accepting());

    size_t done = 0, requeued = 0;
    for (const JobStatus &s : server.status({})) {
        done += s.state == JobState::Done;
        requeued += s.state == JobState::Requeued;
        EXPECT_NE(size_t(s.state), size_t(JobState::Queued));
        EXPECT_NE(size_t(s.state), size_t(JobState::Running));
    }
    EXPECT_GE(done, 1u);
    EXPECT_GE(requeued, 1u);
    EXPECT_EQ(done + requeued, 4u);

    // A shut-down server refuses new work.
    SweepServer::Submitted again;
    EXPECT_FALSE(server.submit(tinySweep({"pointer_chase"}, {"ooo"}),
                               again, &err));
    EXPECT_NE(err.find("shutting down"), std::string::npos);
}

TEST(SweepServerTest, ResubmitRevivesRequeuedAndDedupesDone)
{
    FakeRunner fake;
    fake.release = true;
    ServeConfig cfg;
    cfg.jobs = 1;
    SweepServer server(cfg, fake.runner());
    server.start();

    SweepServer::Submitted first;
    std::string err;
    ASSERT_TRUE(server.submit(tinySweep({"pointer_chase"}, {"ooo"}),
                              first, &err));
    awaitState(server, first.jobs[0].id, JobState::Done);

    // Same grid again: the done job is shared, not re-run.
    SweepServer::Submitted second;
    ASSERT_TRUE(server.submit(tinySweep({"pointer_chase"}, {"ooo"}),
                              second, &err));
    EXPECT_EQ(second.fresh, 0u);
    EXPECT_EQ(second.deduped, 1u);
    EXPECT_EQ(second.jobs[0].id, first.jobs[0].id);
    EXPECT_EQ(second.jobs[0].state, JobState::Done);
    EXPECT_EQ(fake.calls.load(), 1);
    server.shutdown(false);
}

// ---------------------------------------------------------------
// ArtifactCache stats
// ---------------------------------------------------------------

TEST(ArtifactCacheStatsTest, CountsHitsMissesInFlight)
{
    ArtifactCache cache;
    ArtifactCache::Stats s0 = cache.stats();
    EXPECT_EQ(s0.hits, 0u);
    EXPECT_EQ(s0.misses, 0u);
    EXPECT_EQ(s0.inFlight, 0u);

    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    auto t1 = cache.trace(*wl, InputSet::Ref, 5'000);
    ArtifactCache::Stats s1 = cache.stats();
    EXPECT_EQ(s1.misses, 1u);
    EXPECT_EQ(s1.hits, 0u);
    EXPECT_EQ(s1.inFlight, 0u); // compute finished before return

    auto t2 = cache.trace(*wl, InputSet::Ref, 5'000);
    EXPECT_EQ(t1.get(), t2.get()); // same shared artifact
    ArtifactCache::Stats s2 = cache.stats();
    EXPECT_EQ(s2.misses, 1u);
    EXPECT_EQ(s2.hits, 1u);

    cache.trace(*wl, InputSet::Ref, 6'000); // different key
    EXPECT_EQ(cache.stats().misses, 2u);
}

// ---------------------------------------------------------------
// Loopback byte-identity + cross-request cache sharing
// ---------------------------------------------------------------

TEST(SweepServerTest, LoopbackByteIdentityAndCacheSharing)
{
    ScratchDir scratch("crisp_serve_test_results");
    ServeConfig cfg;
    cfg.jobs = 2;
    cfg.resultDir = (scratch.path / "results").string();
    SweepServer server(cfg); // the real simRunner
    server.start();

    // Request 1: the baseline variant (pays the trace miss).
    SweepServer::Submitted sub1;
    std::string err;
    ASSERT_TRUE(server.submit(tinySweep({"pointer_chase"}, {"ooo"}),
                              sub1, &err))
        << err;
    server.drain();
    ASSERT_EQ(stateOf(server, sub1.jobs[0].id), JobState::Done);
    ArtifactCache::Stats afterFirst = server.cache().stats();

    // Request 2, separate submit: a variant that shares the ooo
    // ref trace. Cross-request sharing is the server's reason to
    // exist: artifacts computed for request 1 must be hits now.
    SweepServer::Submitted subShare;
    ASSERT_TRUE(server.submit(
        tinySweep({"pointer_chase"}, {"ibda-8K"}), subShare, &err));
    server.drain();
    ASSERT_EQ(stateOf(server, subShare.jobs[0].id), JobState::Done);
    ArtifactCache::Stats afterSecond = server.cache().stats();
    EXPECT_GT(afterSecond.hits, afterFirst.hits)
        << "second request did not share the first's artifacts";

    // Request 3: the crisp variant, for the byte-identity check.
    SweepServer::Submitted sub2;
    ASSERT_TRUE(server.submit(
        tinySweep({"pointer_chase"}, {"crisp"}), sub2, &err));
    server.drain();
    const std::string crispId = sub2.jobs[0].id;
    ASSERT_EQ(stateOf(server, crispId), JobState::Done);

    // Byte-identity: the server-run job's stats must equal a direct
    // runner invocation against a fresh cache, byte for byte.
    JobStatus st = server.status({crispId})[0];
    std::vector<JobSpec> specs;
    ASSERT_TRUE(expandSweep(tinySweep({"pointer_chase"}, {"crisp"}),
                            specs, &err));
    ASSERT_EQ(specs[0].id, crispId); // IDs are content-addressed
    ArtifactCache freshCache;
    CancelToken token;
    JobOutcome direct =
        SweepServer::simRunner()(specs[0], freshCache, token);
    EXPECT_EQ(st.ipc, direct.ipc);

    // The result file on disk is the byte-exact stats export, and
    // the manifest names it (crisp_report --from-server's layout).
    std::string fileBytes = slurp(fs::path(cfg.resultDir) /
                                  (crispId + ".json"));
    EXPECT_EQ(fileBytes, direct.statsJson);
    std::string manifest =
        slurp(fs::path(cfg.resultDir) / "manifest.ndjson");
    EXPECT_NE(manifest.find(crispId + ".json"), std::string::npos);
    EXPECT_NE(manifest.find("\"state\":\"done\""),
              std::string::npos);

    server.shutdown(false);
}

// ---------------------------------------------------------------
// Socket transport end to end
// ---------------------------------------------------------------

TEST(TransportTest, SubmitStreamShutdownOverSocket)
{
    ScratchDir scratch("crisp_serve_test_sock");
    std::string sock = (scratch.path / "serve.sock").string();

    ServeConfig cfg;
    cfg.jobs = 1;
    SweepServer server(cfg, instantRunner());
    ServeListener listener(server, sock);
    std::string err;
    ASSERT_TRUE(listener.open(&err)) << err;
    server.start();
    std::thread accept([&] { listener.run(); });

    ServeClient client;
    ASSERT_TRUE(client.connect(sock, &err)) << err;
    ASSERT_TRUE(client.sendLine(
        "{\"op\":\"submit\",\"proto\":1,"
        "\"workloads\":[\"pointer_chase\"],"
        "\"variants\":[\"ooo\"],"
        "\"train_ops\":5000,\"ref_ops\":10000}"));
    std::string line;
    ASSERT_TRUE(client.recvLine(line));
    JsonValue sub;
    ASSERT_TRUE(parseJson(line, sub, &err)) << line;
    ASSERT_TRUE(sub.at("ok").boolean) << line;
    std::string id = sub.at("jobs").elements[0].at("id").text;

    // Stream the job to completion on a second connection (the
    // first stays free for control traffic, as crisp_submit does).
    ServeClient stream;
    ASSERT_TRUE(stream.connect(sock, &err));
    ASSERT_TRUE(stream.sendLine("{\"op\":\"stream\",\"job\":\"" +
                                id + "\"}"));
    bool sawResult = false, sawEnd = false;
    while (!sawEnd && stream.recvLine(line)) {
        sawResult |= line.find("\"event\":\"result\"") !=
                     std::string::npos;
        sawEnd |= line.find("\"event\":\"end\"") !=
                  std::string::npos;
    }
    EXPECT_TRUE(sawResult);
    EXPECT_TRUE(sawEnd);

    // The shutdown op stops the daemon; run() returns.
    ASSERT_TRUE(client.sendLine("{\"op\":\"shutdown\"}"));
    ASSERT_TRUE(client.recvLine(line));
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
    accept.join();
    EXPECT_FALSE(server.accepting());
}

// ---------------------------------------------------------------
// Result-file durability ordering (the ResultRecord contract in
// serve/server.h: disk before end event, manifest before the RPC
// that caused it returns)
// ---------------------------------------------------------------

TEST(ResultDurabilityTest, ResultFileExistsWhenEndEventObserved)
{
    ScratchDir scratch("crisp_serve_durable");
    ServeConfig cfg;
    cfg.jobs = 2;
    cfg.resultDir = (scratch.path / "results").string();
    SweepServer server(cfg, instantRunner());
    server.start();

    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(
        tinySweep({"pointer_chase"},
                  {"ooo", "crisp", "ibda-8K", "ibda-inf"}),
        sub, &err))
        << err;

    // The instant a streamer observes a job's end event, its
    // <id>.json must already be on disk with the full stats body —
    // crisp_submit --wait reads the file right after the stream
    // closes, and the CI smoke diffs it against a direct run.
    for (const JobStatus &j : sub.jobs) {
        size_t from = 0;
        bool terminal = false;
        while (!terminal) {
            std::vector<std::string> events;
            ASSERT_TRUE(
                server.waitEvents(j.id, from, events, terminal));
            from += events.size();
        }
        fs::path file =
            fs::path(cfg.resultDir) / (j.id + ".json");
        EXPECT_TRUE(fs::exists(file)) << file;
        EXPECT_EQ(slurp(file), "{}\n");
    }
    server.shutdown(true);
}

TEST(ResultDurabilityTest, CancelManifestDurableBeforeReturn)
{
    ScratchDir scratch("crisp_serve_cancel");
    FakeRunner fake;
    ServeConfig cfg;
    cfg.jobs = 1; // one worker: the second job stays queued
    cfg.resultDir = (scratch.path / "results").string();
    SweepServer server(cfg, fake.runner());
    server.start();

    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(
        tinySweep({"pointer_chase"}, {"ooo", "crisp"}), sub, &err))
        << err;
    fake.awaitRunning(1);
    const std::string queued = sub.jobs[1].id;

    auto res = server.cancel({queued});
    ASSERT_EQ(res.size(), 1u);
    ASSERT_TRUE(res[0].cancelled);

    // cancel() finalized the queued job itself, so by the time it
    // returned the manifest line had to be durable — a client that
    // cancels and immediately reads the manifest must see it.
    std::string manifest =
        slurp(fs::path(cfg.resultDir) / "manifest.ndjson");
    EXPECT_NE(manifest.find(queued), std::string::npos)
        << manifest;
    EXPECT_NE(manifest.find("\"state\":\"cancelled\""),
              std::string::npos)
        << manifest;

    fake.releaseAll();
    server.shutdown(false);
}

TEST(ResultDurabilityTest, ShutdownManifestCoversRequeuedJobs)
{
    ScratchDir scratch("crisp_serve_requeue");
    FakeRunner fake;
    ServeConfig cfg;
    cfg.jobs = 1;
    cfg.resultDir = (scratch.path / "results").string();
    SweepServer server(cfg, fake.runner());
    server.start();

    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(
        tinySweep({"pointer_chase"},
                  {"ooo", "crisp", "ibda-8K", "ibda-inf"}),
        sub, &err))
        << err;
    fake.awaitRunning(1);
    fake.releaseAll();
    server.shutdown(false);

    // Every job that shutdown moved to Requeued has a manifest
    // line by the time shutdown() returned (crisp_report reads the
    // manifest to know what needs resubmitting).
    std::vector<std::string> requeued;
    for (const JobStatus &s : server.status({}))
        if (s.state == JobState::Requeued)
            requeued.push_back(s.id);
    std::string manifest =
        slurp(fs::path(cfg.resultDir) / "manifest.ndjson");
    for (const std::string &id : requeued) {
        EXPECT_NE(manifest.find(id), std::string::npos)
            << "missing requeued job " << id << " in:\n"
            << manifest;
    }
    if (!requeued.empty())
        EXPECT_NE(manifest.find("\"state\":\"requeued\""),
                  std::string::npos)
            << manifest;
}

} // namespace
} // namespace crisp
