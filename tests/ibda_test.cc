/**
 * @file
 * Unit tests for the IBDA hardware baseline: the instruction slice
 * table, the delinquent load table and the iterative rename-stage
 * marking — including its register-only blind spot.
 */

#include <gtest/gtest.h>

#include "ibda/ibda.h"
#include "ibda/ist.h"

namespace crisp
{
namespace
{

TEST(Ist, InsertLookup)
{
    InstructionSliceTable ist(64, 4, false);
    EXPECT_FALSE(ist.lookup(0x1000));
    ist.insert(0x1000);
    EXPECT_TRUE(ist.lookup(0x1000));
    EXPECT_EQ(ist.occupancy(), 1u);
}

TEST(Ist, EvictsWithinSetWhenFull)
{
    InstructionSliceTable ist(8, 2, false); // 4 sets x 2 ways
    // Three PCs in the same set (stride 4 at >>1 indexing = 8
    // bytes).
    ist.insert(0x1000);
    ist.insert(0x1008);
    ist.lookup(0x1000); // refresh
    ist.insert(0x1010); // evicts 0x1008
    EXPECT_TRUE(ist.lookup(0x1000));
    EXPECT_FALSE(ist.lookup(0x1008));
    EXPECT_TRUE(ist.lookup(0x1010));
    EXPECT_EQ(ist.evictions(), 1u);
}

TEST(Ist, InfiniteModeNeverEvicts)
{
    InstructionSliceTable ist(8, 2, true);
    for (uint64_t pc = 0; pc < 10000; pc += 4)
        ist.insert(0x1000 + pc);
    EXPECT_EQ(ist.occupancy(), 2500u);
    EXPECT_EQ(ist.evictions(), 0u);
    EXPECT_TRUE(ist.lookup(0x1000));
    EXPECT_TRUE(ist.lookup(0x1000 + 9996));
}

TEST(Ist, ReinsertRefreshesWithoutDuplicating)
{
    InstructionSliceTable ist(64, 4, false);
    ist.insert(0x2000);
    ist.insert(0x2000);
    EXPECT_EQ(ist.occupancy(), 1u);
}

// ------------------------------------------------------------- Ibda

SimConfig
ibdaConfig()
{
    SimConfig cfg = SimConfig::skylake();
    cfg.enableIbda = true;
    return cfg;
}

MicroOp
makeLoad(uint64_t pc, RegId src)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Load;
    op.src1 = src;
    op.dst = 1;
    return op;
}

TEST(Ibda, DltLearnsRepeatedMissingLoads)
{
    Ibda ibda(ibdaConfig());
    std::array<uint64_t, kNumArchRegs> writers{};
    MicroOp ld = makeLoad(0x1000, 5);

    // Before any misses: not marked.
    EXPECT_FALSE(ibda.onDispatch(ld, writers));
    // One miss is not enough (count threshold 2).
    ibda.onLoadComplete(0x1000, true);
    EXPECT_FALSE(ibda.onDispatch(ld, writers));
    ibda.onLoadComplete(0x1000, true);
    EXPECT_TRUE(ibda.onDispatch(ld, writers));
    // LLC hits never train the DLT.
    Ibda fresh(ibdaConfig());
    fresh.onLoadComplete(0x2000, false);
    fresh.onLoadComplete(0x2000, false);
    MicroOp other = makeLoad(0x2000, 5);
    EXPECT_FALSE(fresh.onDispatch(other, writers));
}

TEST(Ibda, IterativeBackwardMarking)
{
    Ibda ibda(ibdaConfig());
    std::array<uint64_t, kNumArchRegs> writers{};
    // Delinquent load at 0x1000 reads r5, produced at 0x0f00,
    // which in turn reads r6 produced at 0x0e00.
    ibda.onLoadComplete(0x1000, true);
    ibda.onLoadComplete(0x1000, true);

    MicroOp ld = makeLoad(0x1000, 5);
    writers[5] = 0x0f00;
    EXPECT_TRUE(ibda.onDispatch(ld, writers)); // marks 0x0f00

    MicroOp producer;
    producer.pc = 0x0f00;
    producer.cls = OpClass::IntAlu;
    producer.src1 = 6;
    producer.dst = 5;
    writers[6] = 0x0e00;
    // Next encounter: the producer is IST-resident, gets marked and
    // extends the slice one level further.
    EXPECT_TRUE(ibda.onDispatch(producer, writers));

    MicroOp grandparent;
    grandparent.pc = 0x0e00;
    grandparent.cls = OpClass::IntAlu;
    grandparent.src1 = kNoReg;
    grandparent.dst = 6;
    EXPECT_TRUE(ibda.onDispatch(grandparent, writers));
}

TEST(Ibda, UnrelatedInstructionsNotMarked)
{
    Ibda ibda(ibdaConfig());
    std::array<uint64_t, kNumArchRegs> writers{};
    ibda.onLoadComplete(0x1000, true);
    ibda.onLoadComplete(0x1000, true);
    MicroOp ld = makeLoad(0x1000, 5);
    writers[5] = 0x0f00;
    ibda.onDispatch(ld, writers);

    MicroOp bystander;
    bystander.pc = 0x5000;
    bystander.cls = OpClass::IntAlu;
    bystander.src1 = 7;
    bystander.dst = 8;
    EXPECT_FALSE(ibda.onDispatch(bystander, writers));
}

TEST(Ibda, StatsAccumulate)
{
    Ibda ibda(ibdaConfig());
    std::array<uint64_t, kNumArchRegs> writers{};
    ibda.onLoadComplete(0x1000, true);
    ibda.onLoadComplete(0x1000, true);
    MicroOp ld = makeLoad(0x1000, 5);
    writers[5] = 0x0f00;
    ibda.onDispatch(ld, writers);
    IbdaStats s = ibda.stats();
    EXPECT_EQ(s.marked, 1u);
    EXPECT_GE(s.istInsertions, 1u);
    EXPECT_GE(s.dltInsertions, 1u);
}

} // namespace
} // namespace crisp
