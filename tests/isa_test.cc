/**
 * @file
 * Unit tests for the micro-op ISA: opcode classification, predicates
 * and the latency table.
 */

#include <gtest/gtest.h>

#include "isa/latency.h"
#include "isa/micro_op.h"

namespace crisp
{
namespace
{

TEST(OpcodeClass, AluOpsAreIntAlu)
{
    for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::And,
                      Opcode::Or, Opcode::Xor, Opcode::Shl,
                      Opcode::Shr, Opcode::Slt, Opcode::AddI,
                      Opcode::AndI, Opcode::OrI, Opcode::XorI,
                      Opcode::ShlI, Opcode::ShrI, Opcode::SltI,
                      Opcode::MovI, Opcode::Mov}) {
        EXPECT_EQ(opcodeClass(op), OpClass::IntAlu)
            << opcodeName(op);
    }
}

TEST(OpcodeClass, MulDivMapToDedicatedClasses)
{
    EXPECT_EQ(opcodeClass(Opcode::Mul), OpClass::IntMul);
    EXPECT_EQ(opcodeClass(Opcode::MulI), OpClass::IntMul);
    EXPECT_EQ(opcodeClass(Opcode::Div), OpClass::IntDiv);
    EXPECT_EQ(opcodeClass(Opcode::Rem), OpClass::IntDiv);
    EXPECT_EQ(opcodeClass(Opcode::FAdd), OpClass::FpAdd);
    EXPECT_EQ(opcodeClass(Opcode::FMul), OpClass::FpMul);
    EXPECT_EQ(opcodeClass(Opcode::FDiv), OpClass::FpDiv);
}

TEST(OpcodeClass, MemoryAndControl)
{
    EXPECT_EQ(opcodeClass(Opcode::Ld), OpClass::Load);
    EXPECT_EQ(opcodeClass(Opcode::LdX), OpClass::Load);
    EXPECT_EQ(opcodeClass(Opcode::St), OpClass::Store);
    EXPECT_EQ(opcodeClass(Opcode::StX), OpClass::Store);
    EXPECT_EQ(opcodeClass(Opcode::Pf), OpClass::Prefetch);
    EXPECT_EQ(opcodeClass(Opcode::Beq), OpClass::Branch);
    EXPECT_EQ(opcodeClass(Opcode::Jmp), OpClass::Jump);
    EXPECT_EQ(opcodeClass(Opcode::Jr), OpClass::IndirectJump);
    EXPECT_EQ(opcodeClass(Opcode::CallD), OpClass::Call);
    EXPECT_EQ(opcodeClass(Opcode::RetI), OpClass::Ret);
}

TEST(OpClassPredicates, MemAndControl)
{
    EXPECT_TRUE(isMemClass(OpClass::Load));
    EXPECT_TRUE(isMemClass(OpClass::Store));
    EXPECT_TRUE(isMemClass(OpClass::Prefetch));
    EXPECT_FALSE(isMemClass(OpClass::IntAlu));

    EXPECT_TRUE(isControlClass(OpClass::Branch));
    EXPECT_TRUE(isControlClass(OpClass::Jump));
    EXPECT_TRUE(isControlClass(OpClass::IndirectJump));
    EXPECT_TRUE(isControlClass(OpClass::Call));
    EXPECT_TRUE(isControlClass(OpClass::Ret));
    EXPECT_FALSE(isControlClass(OpClass::Load));

    EXPECT_TRUE(isCondBranch(OpClass::Branch));
    EXPECT_FALSE(isCondBranch(OpClass::Jump));
}

TEST(MicroOpPredicates, FollowClass)
{
    MicroOp op;
    op.cls = OpClass::Load;
    EXPECT_TRUE(op.isLoad());
    EXPECT_TRUE(op.isMem());
    EXPECT_FALSE(op.isStore());
    EXPECT_FALSE(op.isControl());
    op.cls = OpClass::Store;
    EXPECT_TRUE(op.isStore());
    op.cls = OpClass::Branch;
    EXPECT_TRUE(op.isControl());
}

TEST(LatencyTable, DefaultsAreSane)
{
    const LatencyTable &lat = defaultLatencies();
    EXPECT_EQ(lat[OpClass::IntAlu], 1u);
    EXPECT_GT(lat[OpClass::IntMul], lat[OpClass::IntAlu]);
    EXPECT_GT(lat[OpClass::IntDiv], lat[OpClass::IntMul]);
    EXPECT_GT(lat[OpClass::FpDiv], lat[OpClass::FpMul]);
    EXPECT_EQ(lat[OpClass::Load], 0u); // caches add the latency
}

TEST(LatencyTable, UnpipelinedClasses)
{
    EXPECT_TRUE(LatencyTable::unpipelined(OpClass::IntDiv));
    EXPECT_TRUE(LatencyTable::unpipelined(OpClass::FpDiv));
    EXPECT_FALSE(LatencyTable::unpipelined(OpClass::IntAlu));
    EXPECT_FALSE(LatencyTable::unpipelined(OpClass::IntMul));
}

TEST(LatencyTable, SetOverrides)
{
    LatencyTable lat;
    lat.set(OpClass::IntMul, 7);
    EXPECT_EQ(lat[OpClass::IntMul], 7u);
}

TEST(StaticInstPrint, Disassembly)
{
    StaticInst si;
    si.op = Opcode::AddI;
    si.dst = 3;
    si.src1 = 4;
    si.imm = 42;
    si.pc = 0x1000;
    std::string s = si.toString();
    EXPECT_NE(s.find("addi"), std::string::npos);
    EXPECT_NE(s.find("r3"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);

    si.critical = true;
    EXPECT_NE(si.toString().find("crit."), std::string::npos);
}

TEST(Names, EveryOpcodeHasName)
{
    for (int i = 0; i < int(Opcode::NumOpcodes); ++i) {
        const char *name = opcodeName(Opcode(i));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "???");
    }
    for (int i = 0; i < int(OpClass::NumClasses); ++i) {
        const char *name = opClassName(OpClass(i));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "Unknown");
    }
}

} // namespace
} // namespace crisp
