/**
 * @file
 * Unit tests for backward slice extraction (§3.3), dependence
 * through memory, the frontier termination rules and critical-path
 * filtering (§3.5).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/critical_path.h"
#include "core/slice_extractor.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"

namespace crisp
{
namespace
{

Trace
traceOf(Assembler &a, uint64_t max_ops = 100000)
{
    auto prog = std::make_shared<Program>(a.finish("t"));
    Interpreter interp(prog);
    return interp.run(max_ops);
}

bool
contains(const std::vector<uint32_t> &v, uint32_t x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(SliceExtractor, ProducerTableRegisterDeps)
{
    Assembler a;
    a.movi(1, 5);     // 0
    a.movi(2, 7);     // 1
    a.add(3, 1, 2);   // 2: producers {0, 1}
    a.addi(4, 3, 1);  // 3: producer {2}
    a.halt();
    Trace t = traceOf(a);
    CrispOptions opts;
    SliceExtractor ex(t, opts);
    const auto &prod = ex.producers();
    EXPECT_EQ(prod[2][0], 0);
    EXPECT_EQ(prod[2][1], 1);
    EXPECT_EQ(prod[3][0], 2);
    EXPECT_EQ(prod[3][1], -1);
    EXPECT_EQ(prod[0][0], -1); // movi has no producers
}

TEST(SliceExtractor, MemoryDependenceTracked)
{
    Assembler a;
    a.movi(1, 0x4000); // 0
    a.movi(2, 42);     // 1
    a.st(1, 2, 0);     // 2
    a.ld(3, 1, 0);     // 3: mem producer = 2
    a.halt();
    Trace t = traceOf(a);
    CrispOptions opts;
    SliceExtractor with_mem(t, opts);
    EXPECT_EQ(with_mem.producers()[3][3], 2);

    // Ablation: register-only (the IBDA view).
    opts.memDependencies = false;
    SliceExtractor reg_only(t, opts);
    EXPECT_EQ(reg_only.producers()[3][3], -1);
}

/**
 * Builds the paper's Fig 2/3 shape: stack-spilled pointer chase.
 * Returns (trace, static indices of: ld cur, ld next, st cur).
 */
struct ChaseKernel
{
    Trace trace;
    uint32_t ld_cur, ld_next, st_cur, root;
};

ChaseKernel
makeChase()
{
    Assembler a;
    const uint32_t n = 512;
    // next[i] = i + 131 (mod n): a single cycle visiting all nodes.
    for (uint32_t i = 0; i < n; ++i) {
        a.poke(0x1000000 + uint64_t(i) * 64,
               0x1000000 + uint64_t((i + 131) % n) * 64);
    }
    a.poke(0x180010, 0x1000000); // [sp+16] = cur
    a.movi(62, 0x180000);        // 0: sp
    a.movi(2, 0);                // 1: counter
    auto loop = a.label();
    a.bind(loop);
    uint32_t ld_cur = a.here();
    a.ld(10, 62, 16);            // cur (through memory)
    uint32_t ld_next = a.here();
    a.ld(11, 10, 0);             // cur->next
    uint32_t st_cur = a.here();
    a.st(62, 11, 16);            // cur = next
    uint32_t root = a.here();
    a.ld(12, 11, 8);             // val of the next node (root)
    a.addi(2, 2, 1);
    a.slti(3, 2, 400);
    a.bne(3, 0, loop);
    a.halt();
    auto prog = std::make_shared<Program>(a.finish("chase"));
    Interpreter interp(prog);
    return {interp.run(100000), ld_cur, ld_next, st_cur, root};
}

TEST(SliceExtractor, ChaseSliceContainsThroughMemoryChain)
{
    ChaseKernel k = makeChase();
    CrispOptions opts;
    SliceExtractor ex(k.trace, opts);
    Slice s = ex.extract(k.root);
    EXPECT_TRUE(contains(s.fullSlice, k.root));
    EXPECT_TRUE(contains(s.fullSlice, k.ld_next));
    EXPECT_TRUE(contains(s.fullSlice, k.ld_cur));
    // The store is reachable only through the memory dependence.
    EXPECT_TRUE(contains(s.fullSlice, k.st_cur));
    // The loop bookkeeping is NOT in the slice.
    EXPECT_FALSE(contains(s.fullSlice, k.root + 1)); // addi
    EXPECT_FALSE(contains(s.fullSlice, k.root + 2)); // slti
}

TEST(SliceExtractor, RegisterOnlyMissesTheStore)
{
    ChaseKernel k = makeChase();
    CrispOptions opts;
    opts.memDependencies = false; // IBDA's blind spot
    SliceExtractor ex(k.trace, opts);
    Slice s = ex.extract(k.root);
    EXPECT_TRUE(contains(s.fullSlice, k.root));
    EXPECT_FALSE(contains(s.fullSlice, k.st_cur));
}

TEST(SliceExtractor, CriticalSliceSubsetOfFull)
{
    ChaseKernel k = makeChase();
    CrispOptions opts;
    SliceExtractor ex(k.trace, opts);
    Slice s = ex.extract(k.root);
    EXPECT_LE(s.criticalSlice.size(), s.fullSlice.size());
    EXPECT_TRUE(contains(s.criticalSlice, k.root));
    for (uint32_t x : s.criticalSlice)
        EXPECT_TRUE(contains(s.fullSlice, x));
}

TEST(SliceExtractor, FilterDisabledKeepsFullSlice)
{
    ChaseKernel k = makeChase();
    CrispOptions opts;
    opts.criticalPathFilter = false;
    SliceExtractor ex(k.trace, opts);
    Slice s = ex.extract(k.root);
    EXPECT_EQ(s.criticalSlice, s.fullSlice);
}

TEST(SliceExtractor, UnknownRootYieldsEmptySlice)
{
    ChaseKernel k = makeChase();
    CrispOptions opts;
    SliceExtractor ex(k.trace, opts);
    Slice s = ex.extract(999999);
    EXPECT_TRUE(s.fullSlice.empty());
}

// ----------------------------------------------- critical path DAG

SliceDag
diamondDag()
{
    // root(3) <- b(1), c(2); b,c <- a(0). a:1cy, b:10cy, c:1cy,
    // root:100cy.
    SliceDag dag;
    dag.nodes = {{0, 100, 1.0},
                 {1, 101, 10.0},
                 {2, 102, 1.0},
                 {3, 103, 100.0}};
    dag.edges = {{3, 1}, {3, 2}, {1, 0}, {2, 0}};
    dag.rootNode = 3;
    return dag;
}

TEST(CriticalPath, LongestPathLatency)
{
    SliceDag dag = diamondDag();
    // Longest: a(1) + b(10) + root(100) = 111.
    EXPECT_DOUBLE_EQ(longestPathLatency(dag), 111.0);
}

TEST(CriticalPath, FilterDropsShortArm)
{
    SliceDag dag = diamondDag();
    auto kept = criticalPathFilter(dag, 0.95);
    EXPECT_TRUE(contains(kept, 103u)); // root
    EXPECT_TRUE(contains(kept, 101u)); // long arm b
    EXPECT_TRUE(contains(kept, 100u)); // shared ancestor a
    EXPECT_FALSE(contains(kept, 102u)); // short arm c (102/111)
}

TEST(CriticalPath, LowFractionKeepsEverything)
{
    SliceDag dag = diamondDag();
    auto kept = criticalPathFilter(dag, 0.5);
    EXPECT_EQ(kept.size(), 4u);
}

TEST(CriticalPath, NodesOffRootPathExcluded)
{
    SliceDag dag = diamondDag();
    // Add an orphan node never reaching the root.
    dag.nodes.push_back({4, 104, 500.0});
    auto kept = criticalPathFilter(dag, 0.1);
    EXPECT_FALSE(contains(kept, 104u));
}

TEST(CriticalPath, EmptyDag)
{
    SliceDag dag;
    EXPECT_DOUBLE_EQ(longestPathLatency(dag), 0.0);
    EXPECT_TRUE(criticalPathFilter(dag, 0.5).empty());
}

} // namespace
} // namespace crisp
