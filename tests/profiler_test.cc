/**
 * @file
 * Unit tests for the software profiler (§3.2 analog): miss ratios,
 * dataflow MLP, stride regularity, branch misprediction rates and
 * AMAT estimation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/profiler.h"
#include "workloads/workload.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"

namespace crisp
{
namespace
{

Trace
traceOf(Assembler &a, uint64_t max_ops = 300000)
{
    auto prog = std::make_shared<Program>(a.finish("t"));
    Interpreter interp(prog);
    return interp.run(max_ops);
}

/** Finds the profile of the static instruction with most misses. */
const LoadProfile &
topLoad(const ProfileResult &prof, uint32_t *sidx_out = nullptr)
{
    const LoadProfile *best = nullptr;
    for (const auto &[sidx, lp] : prof.loads) {
        if (!best || lp.llcMisses > best->llcMisses) {
            best = &lp;
            if (sidx_out)
                *sidx_out = sidx;
        }
    }
    EXPECT_NE(best, nullptr);
    return *best;
}

TEST(Profiler, SerialChaseHasHighMissRatioAndLowMlp)
{
    // Pointer chase over 4096 distinct lines, each visited once.
    Assembler a;
    const uint32_t n = 1u << 16; // 4 MiB: exceeds the LLC
    // Random permutation cycle so neither the stride detector nor
    // the hardware prefetchers can cover the chase.
    Rng rng(17);
    auto perm = randomPermutation(n, rng);
    for (uint32_t i = 0; i < n; ++i) {
        a.poke(0x1000000 + uint64_t(perm[i]) * 64,
               perm[(i + 1) % n]);
    }
    a.movi(1, 0x1000000);
    a.movi(2, int64_t(perm[0]));
    a.movi(4, 0);
    auto loop = a.label();
    a.bind(loop);
    a.shli(3, 2, 6);
    a.ldx(2, 1, 3); // serial chase
    a.addi(4, 4, 1);
    a.slti(5, 4, int64_t(n) - 2);
    a.bne(5, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    ProfileResult prof = profileTrace(t, SimConfig::skylake());
    const LoadProfile &lp = topLoad(prof);
    EXPECT_GT(lp.missRatio(), 0.8);
    EXPECT_LT(lp.avgMlp(), 2.0); // strictly serial
    EXPECT_LT(lp.strideability(), 0.5);
}

TEST(Profiler, IndependentBatchHasHighMlp)
{
    // Eight independent random gathers per iteration (bwaves shape).
    Assembler a;
    uint64_t s = 7;
    for (int i = 0; i < 2048; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        a.poke(0x1000000 + (s % (1 << 20)) * 8, s);
    }
    a.movi(1, 0x1000000);
    a.movi(2, 12345);
    a.movi(15, 0);
    auto loop = a.label();
    a.bind(loop);
    for (int k = 0; k < 8; ++k) {
        a.muli(2, 2, 6364136223846793005LL);
        a.addi(2, 2, 1442695040888963407LL);
        a.shri(RegId(3 + k), 2, 24);
        a.shli(RegId(3 + k), RegId(3 + k), 3);
        a.andi(RegId(3 + k), RegId(3 + k), (1 << 23) - 8);
    }
    for (int k = 0; k < 8; ++k)
        a.ldx(RegId(11 + 0), 1, RegId(3 + k)); // independent loads
    a.addi(15, 15, 1);
    a.slti(16, 15, 1500);
    a.bne(16, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    ProfileResult prof = profileTrace(t, SimConfig::skylake());
    const LoadProfile &lp = topLoad(prof);
    EXPECT_GT(lp.avgMlp(), 4.0); // the §3.2 rejection regime
}

TEST(Profiler, StridedStreamIsRegular)
{
    Assembler a;
    a.movi(1, 0x1000000);
    a.movi(2, 0);
    auto loop = a.label();
    a.bind(loop);
    a.ldx(3, 1, 2);
    a.addi(2, 2, 64);
    a.slti(4, 2, 64 * 3000);
    a.bne(4, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    ProfileResult prof = profileTrace(t, SimConfig::skylake());
    const LoadProfile &lp = topLoad(prof);
    EXPECT_GT(lp.strideability(), 0.95);
}

TEST(Profiler, BranchMispredictionRates)
{
    Assembler a;
    uint64_t s = 5;
    for (int i = 0; i < 8192; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        a.poke(0x800000 + i * 8, (s >> 30) & 1);
    }
    a.movi(1, 0x800000);
    a.movi(2, 0);
    auto loop = a.label();
    auto skip1 = a.label();
    auto skip2 = a.label();
    a.bind(loop);
    a.andi(3, 2, 8191 * 8);
    a.ldx(4, 1, 3);
    a.beq(4, 0, skip1);  // data-random ~50%
    a.addi(5, 5, 1);
    a.bind(skip1);
    a.andi(6, 2, 8);
    a.bne(6, 0, skip2);  // perfectly periodic
    a.addi(7, 7, 1);
    a.bind(skip2);
    a.addi(2, 2, 8);
    a.slti(8, 2, 8 * 4000);
    a.bne(8, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    ProfileResult prof = profileTrace(t, SimConfig::skylake());

    double worst = 0, best = 1;
    for (const auto &[sidx, bp] : prof.branches) {
        if (bp.exec < 1000)
            continue;
        worst = std::max(worst, bp.mispredictRatio());
        best = std::min(best, bp.mispredictRatio());
    }
    EXPECT_GT(worst, 0.25); // the random branch
    EXPECT_LT(best, 0.05); // the periodic one and the loop branch
}

TEST(Profiler, AmatBlendsLatencies)
{
    SimConfig cfg = SimConfig::skylake();
    LoadProfile lp;
    lp.exec = 100;
    lp.l1Misses = 50;
    lp.llcMisses = 25;
    double amat = lp.amat(cfg, 200.0);
    double expect = (50 * cfg.l1d.latency + 25 * cfg.llc.latency +
                     25 * 200.0) /
                    100.0;
    EXPECT_DOUBLE_EQ(amat, expect);
    LoadProfile empty;
    EXPECT_DOUBLE_EQ(empty.amat(cfg, 200.0), cfg.l1d.latency);
}

TEST(Profiler, TotalsAreConsistent)
{
    Assembler a;
    a.movi(1, 0x100000);
    a.movi(2, 0);
    auto loop = a.label();
    a.bind(loop);
    a.shli(5, 2, 3);
    a.ldx(3, 1, 5);
    a.st(1, 3, 800);
    a.addi(2, 2, 1);
    a.slti(4, 2, 100);
    a.bne(4, 0, loop);
    a.halt();
    Trace t = traceOf(a);
    ProfileResult prof = profileTrace(t, SimConfig::skylake());
    EXPECT_EQ(prof.totalOps, t.size());
    uint64_t exec_sum = 0;
    for (const auto &[sidx, lp] : prof.loads)
        exec_sum += lp.exec;
    EXPECT_EQ(exec_sum, prof.totalLoads);
    EXPECT_EQ(prof.totalLoads, 100u);
}

} // namespace
} // namespace crisp
