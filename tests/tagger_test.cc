/**
 * @file
 * Unit tests for the post-link tagger (§4.1) and its footprint
 * accounting (§5.7 / Fig 12).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/tagger.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"

namespace crisp
{
namespace
{

Program
smallProgram()
{
    Assembler a;
    a.movi(1, 0);
    auto loop = a.label();
    a.bind(loop);
    a.addi(1, 1, 1);  // idx 1
    a.muli(2, 1, 3);  // idx 2
    a.slti(3, 1, 50);
    a.bne(3, 0, loop);
    a.halt();
    return a.finish("tag");
}

TEST(Tagger, AddsOneByteAndRelayouts)
{
    Program prog = smallProgram();
    uint64_t bytes_before = prog.staticBytes();
    uint64_t pc2_before = prog.code[2].pc;

    EXPECT_EQ(applyCriticalPrefix(prog, {1, 2}), 2u);
    EXPECT_TRUE(prog.code[1].critical);
    EXPECT_TRUE(prog.code[2].critical);
    EXPECT_EQ(prog.staticBytes(), bytes_before + 2);
    // idx 2 shifted by the prefix byte of idx 1.
    EXPECT_EQ(prog.code[2].pc, pc2_before + 1);
    EXPECT_EQ(prog.criticalCount(), 2u);
}

TEST(Tagger, IdempotentAndBoundsChecked)
{
    Program prog = smallProgram();
    EXPECT_EQ(applyCriticalPrefix(prog, {1}), 1u);
    uint8_t size_after = prog.code[1].size;
    // Tagging again adds nothing.
    EXPECT_EQ(applyCriticalPrefix(prog, {1}), 0u);
    EXPECT_EQ(prog.code[1].size, size_after);
    // Out-of-range indices are ignored.
    EXPECT_EQ(applyCriticalPrefix(prog, {12345}), 0u);
}

TEST(Tagger, SummaryCountsStaticAndDynamicBytes)
{
    Program prog = smallProgram();
    applyCriticalPrefix(prog, {1});
    auto shared = std::make_shared<Program>(prog);
    Interpreter interp(shared);
    Trace trace = interp.run(100000);

    TagSummary s = summarizeTagging(*shared, trace);
    EXPECT_EQ(s.taggedStatics, 1u);
    EXPECT_EQ(s.staticBytesAfter - s.staticBytesBefore, 1u);
    // addi executes 50 times: exactly 50 extra dynamic bytes.
    EXPECT_EQ(s.dynamicBytesAfter - s.dynamicBytesBefore, 50u);
    EXPECT_GT(s.dynamicOverhead(), 0.0);
    EXPECT_GT(s.staticOverhead(), 0.0);
    EXPECT_LT(s.staticOverhead(), 0.25);
}

TEST(Tagger, TracesFromTaggedProgramCarryFlags)
{
    Program prog = smallProgram();
    applyCriticalPrefix(prog, {2});
    auto shared = std::make_shared<Program>(std::move(prog));
    Interpreter interp(shared);
    Trace trace = interp.run(100000);
    unsigned critical = 0;
    for (const auto &op : trace.ops) {
        if (op.critical) {
            ++critical;
            EXPECT_EQ(op.sidx, 2u);
        }
    }
    EXPECT_EQ(critical, 50u);
}

TEST(TagSummary, ZeroDivisionSafe)
{
    TagSummary s;
    EXPECT_EQ(s.staticOverhead(), 0.0);
    EXPECT_EQ(s.dynamicOverhead(), 0.0);
}

} // namespace
} // namespace crisp
