/**
 * @file
 * Unit tests for the core's structural components: reservation
 * station, ROB, load/store queues and functional unit ports.
 */

#include <gtest/gtest.h>

#include "cpu/functional_units.h"
#include "cpu/lsq.h"
#include "cpu/reservation_station.h"
#include "cpu/rob.h"

namespace crisp
{
namespace
{

TEST(ReservationStation, InsertReleaseOccupancy)
{
    ReservationStation rs(4);
    DynInst insts[5];
    MicroOp op;
    for (auto &inst : insts)
        inst.reset(0, &op, 0);

    EXPECT_FALSE(rs.full());
    int s0 = rs.insert(&insts[0]);
    int s1 = rs.insert(&insts[1]);
    rs.insert(&insts[2]);
    rs.insert(&insts[3]);
    EXPECT_TRUE(rs.full());
    EXPECT_EQ(rs.occupancy(), 4u);
    EXPECT_EQ(rs.at(unsigned(s0)), &insts[0]);

    rs.release(s1);
    EXPECT_FALSE(rs.full());
    EXPECT_EQ(rs.at(unsigned(s1)), nullptr);
    EXPECT_EQ(insts[1].rsSlot, -1);
    int s4 = rs.insert(&insts[4]);
    EXPECT_EQ(s4, s1); // freed slot reused
}

TEST(ReservationStation, AgeTracksInsertionOrder)
{
    ReservationStation rs(8);
    DynInst a, b, c;
    MicroOp op;
    a.reset(0, &op, 0);
    b.reset(1, &op, 0);
    c.reset(2, &op, 0);
    int sa = rs.insert(&a);
    int sb = rs.insert(&b);
    int sc = rs.insert(&c);
    SlotVector cand(8);
    cand.set(unsigned(sa));
    cand.set(unsigned(sb));
    cand.set(unsigned(sc));
    EXPECT_EQ(rs.age().selectOldest(cand), sa);
}

TEST(Rob, FifoOrder)
{
    Rob rob(3);
    DynInst a, b, c;
    EXPECT_TRUE(rob.empty());
    rob.push(&a);
    rob.push(&b);
    rob.push(&c);
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head(), &a);
    rob.pop();
    EXPECT_EQ(rob.head(), &b);
    rob.push(&a); // wraps
    EXPECT_EQ(rob.occupancy(), 3u);
    rob.pop();
    rob.pop();
    EXPECT_EQ(rob.head(), &a);
}

TEST(Lsq, OccupancyLimits)
{
    LoadStoreQueues lsq(2, 2);
    EXPECT_FALSE(lsq.loadQueueFull());
    lsq.dispatchLoad(0x100);
    lsq.dispatchLoad(0x200);
    EXPECT_TRUE(lsq.loadQueueFull());
    lsq.retireLoad();
    EXPECT_FALSE(lsq.loadQueueFull());

    DynInst st;
    lsq.dispatchStore(&st, 0x300);
    lsq.dispatchStore(&st, 0x308);
    EXPECT_TRUE(lsq.storeQueueFull());
}

TEST(Lsq, ForwardingFindsYoungestOlderStore)
{
    LoadStoreQueues lsq(8, 8);
    DynInst s1, s2;
    lsq.dispatchStore(&s1, 0x1000);
    lsq.dispatchStore(&s2, 0x1000); // younger store, same word
    EXPECT_EQ(lsq.dispatchLoad(0x1000), &s2);
    EXPECT_EQ(lsq.dispatchLoad(0x1008), nullptr); // other word
}

TEST(Lsq, RetireCleansOnlyOwnMapEntry)
{
    LoadStoreQueues lsq(8, 8);
    DynInst s1, s2;
    lsq.dispatchStore(&s1, 0x1000);
    lsq.dispatchStore(&s2, 0x1000);
    // Older store retires: map still points at the younger one.
    lsq.retireStore(&s1, 0x1000);
    EXPECT_EQ(lsq.dispatchLoad(0x1000), &s2);
    lsq.retireStore(&s2, 0x1000);
    EXPECT_EQ(lsq.dispatchLoad(0x1000), nullptr);
}

TEST(FunctionalUnits, PortLimitsPerCycle)
{
    SimConfig cfg; // 4 ALU, 2 load, 1 store
    FunctionalUnits fus(cfg);
    fus.beginCycle(10);
    for (int k = 0; k < 2; ++k) {
        EXPECT_TRUE(fus.available(FuPool::Load));
        fus.claim(FuPool::Load, OpClass::Load, 10, 20);
    }
    EXPECT_FALSE(fus.available(FuPool::Load));

    EXPECT_TRUE(fus.available(FuPool::Store));
    fus.claim(FuPool::Store, OpClass::Store, 10, 11);
    EXPECT_FALSE(fus.available(FuPool::Store));

    for (int k = 0; k < 4; ++k) {
        EXPECT_TRUE(fus.available(FuPool::Alu));
        fus.claim(FuPool::Alu, OpClass::IntAlu, 10, 11);
    }
    EXPECT_FALSE(fus.available(FuPool::Alu));

    // Ports replenish on the next cycle.
    fus.beginCycle(11);
    EXPECT_TRUE(fus.available(FuPool::Load));
    EXPECT_TRUE(fus.available(FuPool::Store));
    EXPECT_TRUE(fus.available(FuPool::Alu));
}

TEST(FunctionalUnits, UnpipelinedDivBlocksItsUnit)
{
    SimConfig cfg;
    FunctionalUnits fus(cfg);
    fus.beginCycle(10);
    // Four dividers occupy all ALU units until cycle 34.
    for (int k = 0; k < 4; ++k) {
        ASSERT_TRUE(fus.available(FuPool::Alu));
        fus.claim(FuPool::Alu, OpClass::IntDiv, 10, 34);
    }
    EXPECT_FALSE(fus.available(FuPool::Alu));
    fus.beginCycle(20);
    EXPECT_FALSE(fus.available(FuPool::Alu)); // still busy
    fus.beginCycle(34);
    EXPECT_TRUE(fus.available(FuPool::Alu));
}

TEST(FunctionalUnits, PoolMapping)
{
    EXPECT_EQ(poolOf(OpClass::Load), FuPool::Load);
    EXPECT_EQ(poolOf(OpClass::Prefetch), FuPool::Load);
    EXPECT_EQ(poolOf(OpClass::Store), FuPool::Store);
    EXPECT_EQ(poolOf(OpClass::IntAlu), FuPool::Alu);
    EXPECT_EQ(poolOf(OpClass::FpMul), FuPool::Alu);
    EXPECT_EQ(poolOf(OpClass::Branch), FuPool::Alu);
}

} // namespace
} // namespace crisp
