/**
 * @file
 * Invariant-checker tests (src/check, DESIGN.md §11), two-sided:
 *
 *  - Clean runs: `--check`-style full audits pass on real workloads
 *    under both tick engines and the scheduler variants, and the
 *    checker is observationally free — statistics are bit-identical
 *    with and without it.
 *  - Mutation runs: each structure-level audit is aimed at a
 *    deliberately corrupted structure (ROB age order, scoreboard
 *    wakeup edges, ready pools, age matrix, rename table, LSQ
 *    ordering) and must throw an InvariantViolation naming that
 *    structure — proving the checks can actually catch the bugs they
 *    claim to.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "cache/cache.h"
#include "check/invariant_checker.h"
#include "cpu/core.h"
#include "cpu/lsq.h"
#include "cpu/reservation_station.h"
#include "cpu/rob.h"
#include "dram/controller.h"
#include "telemetry/cpi_stack.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"

namespace crisp
{
namespace
{

Trace
traceOf(Assembler &a, uint64_t max_ops = 60000)
{
    auto prog = std::make_shared<Program>(a.finish("t"));
    Interpreter interp(prog);
    return interp.run(max_ops);
}

/** Mixed ALU / load / store / branch loop with register reuse. */
Trace
memoryLoop()
{
    Assembler a;
    a.movi(1, 0);      // index
    a.movi(2, 4096);   // base
    a.movi(5, 7);
    auto loop = a.label();
    a.bind(loop);
    a.shli(3, 1, 3);
    a.add(3, 2, 3);
    a.st(3, 5);        // mem[r3] = r5
    a.ld(4, 3);        // r4 = mem[r3] (forwarded)
    a.add(5, 4, 5);
    a.ld(6, 2, 8);     // shared hot line
    a.addi(1, 1, 1);
    a.slti(7, 1, 700);
    a.bne(7, 0, loop);
    a.halt();
    return traceOf(a);
}

CoreStats
runChecked(const Trace &t, SimConfig cfg, TickModel model,
           uint64_t every = 1)
{
    cfg.tickModel = model;
    cfg.checkInvariants = true;
    cfg.checkEvery = every;
    Core core(t, cfg);
    return core.run();
}

/** Runs @p fn and asserts it throws an InvariantViolation naming
 *  @p structure (also exercising the what() composition). */
void
expectViolation(const std::function<void()> &fn,
                const std::string &structure)
{
    try {
        fn();
    } catch (const InvariantViolation &v) {
        EXPECT_EQ(v.structure, structure);
        EXPECT_NE(std::string(v.what()).find(structure),
                  std::string::npos)
            << v.what();
        return;
    } catch (const std::exception &e) {
        ADD_FAILURE() << "wrong exception type: " << e.what();
        return;
    }
    ADD_FAILURE() << "no InvariantViolation raised for " << structure;
}

MicroOp
makeOp(OpClass cls, RegId dst = kNoReg, uint64_t addr = 0)
{
    MicroOp op;
    op.cls = cls;
    op.dst = dst;
    op.effAddr = addr;
    op.pc = 0x1000;
    return op;
}

// ---------------------------------------------------------------
// Clean runs: full audits pass on real simulations.
// ---------------------------------------------------------------

TEST(CheckClean, EveryTickBothEngines)
{
    Trace t = memoryLoop();
    for (TickModel model : {TickModel::Cycle, TickModel::Event}) {
        CoreStats s;
        ASSERT_NO_THROW(
            s = runChecked(t, SimConfig::skylake(), model));
        EXPECT_EQ(s.retired, t.size());
    }
}

TEST(CheckClean, SchedulerVariants)
{
    Trace t = memoryLoop();
    SimConfig crisp_cfg = SimConfig::skylake();
    crisp_cfg.scheduler = SchedulerPolicy::CrispPriority;
    SimConfig ibda_cfg = SimConfig::skylake();
    ibda_cfg.enableIbda = true;
    for (const SimConfig &cfg : {crisp_cfg, ibda_cfg}) {
        for (TickModel model :
             {TickModel::Cycle, TickModel::Event}) {
            ASSERT_NO_THROW(runChecked(t, cfg, model));
        }
    }
}

TEST(CheckClean, CheckerIsObservationallyFree)
{
    // Enabling the checker must not perturb the simulation: the
    // audit only reads state.
    Trace t = memoryLoop();
    SimConfig plain = SimConfig::skylake();
    Core base(t, plain);
    CoreStats ref = base.run();
    CoreStats checked =
        runChecked(t, SimConfig::skylake(), TickModel::Event);
    EXPECT_EQ(ref.cycles, checked.cycles);
    EXPECT_EQ(ref.retired, checked.retired);
    EXPECT_EQ(ref.issued, checked.issued);
    EXPECT_EQ(ref.cpi, checked.cpi);
}

TEST(CheckClean, ThrottledAuditStillRunsFinalCheck)
{
    // A sparse period still audits at least once (end of run).
    Trace t = memoryLoop();
    SimConfig cfg = SimConfig::skylake();
    cfg.checkInvariants = true;
    cfg.checkEvery = 1u << 20; // far beyond the run length
    Core core(t, cfg);
    ASSERT_NO_THROW(core.run());
}

TEST(CheckClean, MemorySystemAuditsPassAfterTraffic)
{
    CacheConfig ccfg{4096, 4, 64, 4, 4};
    Cache cache("l1", ccfg);
    for (uint64_t i = 0; i < 256; ++i) {
        uint64_t addr = (i * 2897) % 16384;
        auto res = cache.lookup(addr, i * 3);
        if (!res.hit)
            cache.fill(addr, i * 3 + 20);
    }
    ASSERT_NO_THROW(InvariantChecker::checkCache(cache, 1000));

    DramController dram;
    for (uint64_t i = 0; i < 64; ++i)
        dram.access(i * 8192 + (i % 7) * 64, i * 11, i % 3 == 0);
    ASSERT_NO_THROW(InvariantChecker::checkDram(dram, 1000));
}

// ---------------------------------------------------------------
// Mutation runs: corrupted structures must be caught by name.
// ---------------------------------------------------------------

TEST(CheckMutation, RobAgeOrderCorruption)
{
    MicroOp op = makeOp(OpClass::IntAlu);
    Rob rob(8);
    DynInst older, younger;
    older.reset(5, &op, 0);
    younger.reset(3, &op, 0); // out of order: seq decreases
    rob.push(&older);
    rob.push(&younger);
    expectViolation(
        [&] { InvariantChecker::checkRob(rob, 42); }, "rob");
}

TEST(CheckMutation, RobRetiredEntryStillInWindow)
{
    MicroOp op = makeOp(OpClass::IntAlu);
    Rob rob(8);
    DynInst inst;
    inst.reset(1, &op, 0);
    inst.inWindow = false; // "retired" but still in the ring
    rob.push(&inst);
    expectViolation(
        [&] { InvariantChecker::checkRob(rob, 7); }, "rob");
}

TEST(CheckMutation, ViolationCarriesCycleAndSnapshot)
{
    MicroOp op = makeOp(OpClass::IntAlu);
    Rob rob(8);
    DynInst a, b;
    a.reset(9, &op, 0);
    b.reset(2, &op, 0);
    rob.push(&a);
    rob.push(&b);
    try {
        InvariantChecker::checkRob(rob, 42);
        FAIL() << "corruption not detected";
    } catch (const InvariantViolation &v) {
        EXPECT_EQ(v.cycle, 42u);
        EXPECT_EQ(v.structure, "rob");
        EXPECT_FALSE(v.snapshot.empty());
        EXPECT_NE(v.snapshot.find("seq="), std::string::npos);
        EXPECT_NE(std::string(v.what()).find("cycle 42"),
                  std::string::npos);
    }
}

TEST(CheckMutation, RsBackPointerCorruption)
{
    MicroOp op = makeOp(OpClass::IntAlu);
    ReservationStation rs(8);
    DynInst inst;
    inst.reset(1, &op, 0);
    rs.insert(&inst);
    inst.rsSlot = int16_t(inst.rsSlot + 1); // dangling back-pointer
    expectViolation(
        [&] { InvariantChecker::checkReservationStation(rs, 3); },
        "rs");
}

TEST(CheckMutation, RsOccupantAlreadyIssued)
{
    // An issued instruction must have released its slot; a stuck
    // release would leak RS capacity.
    MicroOp op = makeOp(OpClass::IntAlu);
    ReservationStation rs(8);
    DynInst inst;
    inst.reset(1, &op, 0);
    rs.insert(&inst);
    inst.issued = true;
    expectViolation(
        [&] { InvariantChecker::checkReservationStation(rs, 3); },
        "rs");
}

TEST(CheckMutation, ScoreboardEdgeToZeroPendingConsumer)
{
    MicroOp op = makeOp(OpClass::IntAlu, 1);
    Rob rob(8);
    ReservationStation rs(8);
    DynInst producer, consumer;
    producer.reset(1, &op, 0);
    consumer.reset(2, &op, 0);
    rob.push(&producer);
    rob.push(&consumer);
    rs.insert(&producer);
    rs.insert(&consumer);
    producer.consumers.push_back(&consumer);
    consumer.pendingProducers = 0; // lost the producer count
    expectViolation(
        [&] { InvariantChecker::checkScoreboard(rs, rob, 9); },
        "scoreboard");
}

TEST(CheckMutation, ScoreboardPendingCountTooHigh)
{
    // pendingProducers claims two producers but only one wakeup edge
    // exists: the consumer would sleep forever.
    MicroOp op = makeOp(OpClass::IntAlu, 1);
    Rob rob(8);
    ReservationStation rs(8);
    DynInst producer, consumer;
    producer.reset(1, &op, 0);
    consumer.reset(2, &op, 0);
    rob.push(&producer);
    rob.push(&consumer);
    rs.insert(&producer);
    rs.insert(&consumer);
    producer.consumers.push_back(&consumer);
    consumer.pendingProducers = 2;
    expectViolation(
        [&] { InvariantChecker::checkScoreboard(rs, rob, 9); },
        "scoreboard");
}

TEST(CheckMutation, ReadyPoolEntryNotReady)
{
    MicroOp op = makeOp(OpClass::IntAlu);
    ReservationStation rs(8);
    DynInst inst;
    inst.reset(1, &op, 0);
    rs.insert(&inst);
    inst.pendingProducers = 1; // still waiting, yet pooled
    SlotVector cand(8), none(8);
    cand.set(unsigned(inst.rsSlot));
    expectViolation(
        [&] {
            InvariantChecker::checkReadyPools(
                rs, cand, none, none, none, none, none, none,
                false, 5);
        },
        "ready-pools");
}

TEST(CheckMutation, ReadyPoolClassMismatch)
{
    // A load parked in the ALU pool would issue on the wrong ports.
    MicroOp op = makeOp(OpClass::Load, 1, 64);
    ReservationStation rs(8);
    DynInst inst;
    inst.reset(1, &op, 0);
    rs.insert(&inst);
    SlotVector cand(8), none(8);
    cand.set(unsigned(inst.rsSlot));
    expectViolation(
        [&] {
            InvariantChecker::checkReadyPools(
                rs, cand, none, none, none, none, none, none,
                false, 5);
        },
        "ready-pools");
}

TEST(CheckMutation, ReadyPoolPriorityNotSubset)
{
    MicroOp op = makeOp(OpClass::IntAlu);
    ReservationStation rs(8);
    DynInst inst;
    inst.reset(1, &op, 0);
    rs.insert(&inst);
    SlotVector none(8), prio(8);
    prio.set(unsigned(inst.rsSlot)); // priority bit without candidate
    expectViolation(
        [&] {
            InvariantChecker::checkReadyPools(
                rs, none, none, none, prio, none, none, none,
                false, 5);
        },
        "ready-pools");
}

TEST(CheckMutation, ReadyPoolLostEntryEventMode)
{
    // Event engine only: a dataflow-free entry missing from every
    // pool and the heap would never issue (the exact bug class the
    // incremental ready sets could introduce).
    MicroOp op = makeOp(OpClass::IntAlu);
    ReservationStation rs(8);
    DynInst inst;
    inst.reset(1, &op, 0);
    rs.insert(&inst);
    SlotVector none(8);
    // The cycle engine rescans every tick, so this is legal there...
    ASSERT_NO_THROW(InvariantChecker::checkReadyPools(
        rs, none, none, none, none, none, none, none, false, 5));
    // ...but the event engine must never lose a ready entry.
    expectViolation(
        [&] {
            InvariantChecker::checkReadyPools(
                rs, none, none, none, none, none, none, none,
                true, 5);
        },
        "ready-pools");
}

TEST(CheckMutation, AgeMatrixDisagreesWithSequence)
{
    MicroOp op = makeOp(OpClass::IntAlu);
    ReservationStation rs(8);
    DynInst first, second;
    first.reset(1, &op, 0);
    second.reset(2, &op, 0);
    rs.insert(&first);  // older stamp
    rs.insert(&second); // younger stamp
    ASSERT_NO_THROW(InvariantChecker::checkAgeMatrix(rs, 5));
    std::swap(first.seq, second.seq); // ages now lie
    expectViolation(
        [&] { InvariantChecker::checkAgeMatrix(rs, 5); },
        "age-matrix");
}

TEST(CheckMutation, RenameEntryWrongRegister)
{
    MicroOp op = makeOp(OpClass::IntAlu, /*dst=*/3);
    DynInst writer;
    writer.reset(1, &op, 0);
    std::array<DynInst *, kNumArchRegs> last_writer{};
    last_writer[5] = &writer; // writer of r3 filed under r5
    expectViolation(
        [&] { InvariantChecker::checkRenameMap(last_writer, 4); },
        "rename");
}

TEST(CheckMutation, RenameEntryLeftWindow)
{
    MicroOp op = makeOp(OpClass::IntAlu, /*dst=*/3);
    DynInst writer;
    writer.reset(1, &op, 0);
    writer.inWindow = false; // retired without clearing the table
    std::array<DynInst *, kNumArchRegs> last_writer{};
    last_writer[3] = &writer;
    expectViolation(
        [&] { InvariantChecker::checkRenameMap(last_writer, 4); },
        "rename");
}

TEST(CheckMutation, LoadIssuedPastUnresolvedStore)
{
    MicroOp store_op = makeOp(OpClass::Store, kNoReg, 4096);
    MicroOp load_op = makeOp(OpClass::Load, 1, 4096);
    Rob rob(8);
    LoadStoreQueues lsq(4, 4);
    DynInst store, load;
    store.reset(1, &store_op, 0);
    load.reset(2, &load_op, 0);
    rob.push(&store);
    rob.push(&load);
    lsq.dispatchStore(&store, 4096);
    lsq.dispatchLoad(4096);
    load.forwarded = true;
    // Legal so far: both waiting.
    ASSERT_NO_THROW(InvariantChecker::checkLsq(lsq, rob, 10));
    load.issued = true; // issued past the un-issued older store
    expectViolation(
        [&] { InvariantChecker::checkLsq(lsq, rob, 10); }, "lsq");
}

TEST(CheckMutation, AliasedLoadNotMarkedForwarded)
{
    MicroOp store_op = makeOp(OpClass::Store, kNoReg, 4096);
    MicroOp load_op = makeOp(OpClass::Load, 1, 4096);
    Rob rob(8);
    LoadStoreQueues lsq(4, 4);
    DynInst store, load;
    store.reset(1, &store_op, 0);
    load.reset(2, &load_op, 0);
    rob.push(&store);
    rob.push(&load);
    lsq.dispatchStore(&store, 4096);
    lsq.dispatchLoad(4096);
    // forwarded deliberately left false: the load would read stale
    // memory behind the in-flight store.
    expectViolation(
        [&] { InvariantChecker::checkLsq(lsq, rob, 10); }, "lsq");
}

TEST(CheckMutation, LsqOccupancyLeak)
{
    Rob rob(8);
    LoadStoreQueues lsq(4, 4);
    lsq.dispatchLoad(64); // queue entry with no in-window load
    expectViolation(
        [&] { InvariantChecker::checkLsq(lsq, rob, 10); }, "lsq");
}

TEST(CheckMutation, CpiBucketsLeakCycles)
{
    CpiStack cpi;
    cpi.charge(CpiBucket::Retiring, 5);
    ASSERT_NO_THROW(InvariantChecker::checkCpiStack(cpi, 5, 5));
    expectViolation(
        [&] { InvariantChecker::checkCpiStack(cpi, 6, 6); }, "cpi");
}

} // namespace
} // namespace crisp
