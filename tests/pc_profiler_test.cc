/**
 * @file
 * Per-PC criticality attribution profiler tests.
 *
 * Unit tests drive PcProfiler hooks with synthetic instructions and
 * pin the attribution algebra: load wait / ROB-head-distance / MLP
 * overlap accounting, mispredicting-branch attribution, the decision
 * log, top-N ordering and the StatRegistry export shape. Full-run
 * tests attach the profiler to real cores and pin the paper-level
 * claims: under the CRISP scheduler on mcf the decision log is
 * non-empty with positive realized lead and the top delinquent loads
 * issue critically, while the oldest-first baseline never bypasses;
 * and profiles are bit-identical across both tick engines.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "cpu/dyn_inst.h"
#include "sim/artifact_cache.h"
#include "sim/driver.h"
#include "telemetry/json.h"
#include "telemetry/pc_profiler.h"
#include "telemetry/stat_registry.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

// ---------------------------------------------------------------
// Unit tests: synthetic instructions through the hooks.
// ---------------------------------------------------------------

struct SynthInst
{
    MicroOp op;
    DynInst inst;

    SynthInst(uint64_t pc, OpClass cls, uint64_t seq,
              uint64_t dispatch, uint64_t done)
    {
        op.pc = pc;
        op.cls = cls;
        inst.op = &op;
        inst.seq = seq;
        inst.dispatchCycle = dispatch;
        inst.doneCycle = done;
    }
};

TEST(PcProfilerUnit, AttributesLoadWaitAndRobDistance)
{
    PcProfiler prof;
    SynthInst ld(0x40, OpClass::Load, /*seq=*/12, /*dispatch=*/100,
                 /*done=*/130);
    ld.inst.prioritized = true;
    prof.onIssue(ld.inst, /*cycle=*/110, /*rob_head_seq=*/4);
    prof.onIssue(ld.inst, /*cycle=*/115, /*rob_head_seq=*/12);

    ASSERT_EQ(prof.loads().size(), 1u);
    const PcProfiler::LoadEntry &e = prof.loads().at(0x40);
    EXPECT_EQ(e.issues, 2u);
    EXPECT_EQ(e.critical, 2u);
    EXPECT_EQ(e.waitCycles, 10u + 15u);
    EXPECT_EQ(e.robHeadDist, 8u + 0u);
    EXPECT_EQ(e.llcMisses, 0u); // served by L1
    EXPECT_TRUE(prof.branches().empty());
}

TEST(PcProfilerUnit, TracksMlpOverlapAcrossOutstandingMisses)
{
    PcProfiler prof;
    // Three DRAM loads: the second issues while the first is still
    // in flight (overlap 1); the third issues after both completed
    // (overlap 0).
    SynthInst a(0x10, OpClass::Load, 1, 0, /*done=*/200);
    SynthInst b(0x20, OpClass::Load, 2, 0, /*done=*/260);
    SynthInst c(0x30, OpClass::Load, 3, 0, /*done=*/900);
    for (SynthInst *s : {&a, &b, &c})
        s->inst.servedBy = MemLevel::Dram;

    prof.onIssue(a.inst, /*cycle=*/100, 0);
    prof.onIssue(b.inst, /*cycle=*/150, 0);
    prof.onIssue(c.inst, /*cycle=*/500, 0);

    EXPECT_EQ(prof.loads().at(0x10).mlpOverlap, 0u);
    EXPECT_EQ(prof.loads().at(0x10).llcMisses, 1u);
    EXPECT_EQ(prof.loads().at(0x20).mlpOverlap, 1u);
    EXPECT_EQ(prof.loads().at(0x30).mlpOverlap, 0u);
}

TEST(PcProfilerUnit, AttributesOnlyMispredictingControl)
{
    PcProfiler prof;
    SynthInst br(0x80, OpClass::Branch, 7, 40, 50);
    br.inst.mispredicted = true;
    prof.onIssue(br.inst, /*cycle=*/45, /*rob_head_seq=*/5);

    SynthInst good(0x84, OpClass::Branch, 8, 40, 50);
    prof.onIssue(good.inst, 45, 5); // predicted: ignored

    SynthInst alu(0x88, OpClass::IntAlu, 9, 40, 50);
    alu.inst.mispredicted = true;   // not control: ignored
    prof.onIssue(alu.inst, 45, 5);

    ASSERT_EQ(prof.branches().size(), 1u);
    const PcProfiler::BranchEntry &e = prof.branches().at(0x80);
    EXPECT_EQ(e.mispredicts, 1u);
    EXPECT_EQ(e.waitCycles, 5u);
    EXPECT_EQ(e.robHeadDist, 2u);
    EXPECT_TRUE(prof.loads().empty());
}

TEST(PcProfilerUnit, DecisionLogAggregatesByPcPair)
{
    PcProfiler prof;
    prof.onCriticalPick(0x100, 0x200, 30);
    prof.onCriticalPick(0x100, 0x200, 12);
    prof.onCriticalPick(0x100, 0x300, 5);

    EXPECT_EQ(prof.decisionCount(), 3u);
    EXPECT_EQ(prof.decisionLeadCycles(), 47u);
    ASSERT_EQ(prof.decisions().size(), 2u);
    const auto &pair = prof.decisions().at({0x100, 0x200});
    EXPECT_EQ(pair.picks, 2u);
    EXPECT_EQ(pair.leadCycles, 42u);

    // topDecisions sorts by lead cycles, descending.
    auto top = prof.topDecisions(8);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0][1], 0x200u);
    EXPECT_EQ(top[0][3], 42u);
    EXPECT_EQ(top[1][1], 0x300u);
}

TEST(PcProfilerUnit, TopLoadsSortByWaitAndTruncate)
{
    PcProfiler prof;
    SynthInst slow(0x10, OpClass::Load, 1, 0, 10);
    SynthInst fast(0x20, OpClass::Load, 2, 0, 10);
    SynthInst mid(0x30, OpClass::Load, 3, 0, 10);
    prof.onIssue(slow.inst, /*cycle=*/90, 0);
    prof.onIssue(fast.inst, /*cycle=*/3, 0);
    prof.onIssue(mid.inst, /*cycle=*/40, 0);

    auto top = prof.topLoads(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0][0], 0x10u);
    EXPECT_EQ(top[1][0], 0x30u);
    // Row layout: {pc, issues, llc, critical, wait, dist, mlp}.
    EXPECT_EQ(top[0][4], 90u);
}

TEST(PcProfilerUnit, RegistersTablesAndCounters)
{
    PcProfiler prof;
    SynthInst ld(0x40, OpClass::Load, 1, 0, 10);
    prof.onIssue(ld.inst, 25, 0);
    prof.onCriticalPick(0x40, 0x44, 9);

    StatRegistry reg;
    prof.registerInto(reg, "crisp.profile", /*top_n=*/16);
    EXPECT_EQ(reg.counter("crisp.profile.tracked_load_pcs"), 1u);
    EXPECT_EQ(reg.counter("crisp.profile.critical_picks"), 1u);
    EXPECT_EQ(reg.counter("crisp.profile.critical_pick_lead_cycles"),
              9u);

    JsonValue doc;
    ASSERT_TRUE(parseJson(reg.toJson(), doc));
    const JsonValue *loads = doc.find("crisp.profile.loads");
    ASSERT_NE(loads, nullptr);
    ASSERT_EQ(loads->at("rows").elements.size(), 1u);
    EXPECT_EQ(loads->at("columns").elements[0].text, "pc");
    const JsonValue *dec = doc.find("crisp.profile.decisions");
    ASSERT_NE(dec, nullptr);
    EXPECT_EQ(dec->at("rows").elements[0].elements[3].number, 9.0);
}

// ---------------------------------------------------------------
// Full-run attribution on mcf: the paper-level claims.
// ---------------------------------------------------------------

constexpr uint64_t kTrainOps = 30'000;
constexpr uint64_t kRefOps = 60'000;

ArtifactCache &
cache()
{
    static ArtifactCache c;
    return c;
}

struct ProfiledRun
{
    CoreStats stats;
    std::unique_ptr<PcProfiler> prof;
};

ProfiledRun
runProfiled(const Trace &trace, SimConfig cfg, TickModel model)
{
    cfg.tickModel = model;
    Core core(trace, cfg);
    ProfiledRun r;
    r.prof = std::make_unique<PcProfiler>();
    core.setProfiler(r.prof.get());
    r.stats = core.run();
    return r;
}

TEST(PcProfilerRun, CrispOnMcfRecordsPositiveLead)
{
    const WorkloadInfo *wl = findWorkload("mcf");
    ASSERT_NE(wl, nullptr);
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    CrispOptions opts;
    auto tagged = cache().taggedRefTrace(*wl, opts, cfg, kTrainOps,
                                         kRefOps);
    ProfiledRun crisp =
        runProfiled(*tagged, cfg, TickModel::Event);

    // The two-level pick fired, and every recorded bypass jumped a
    // genuinely older instruction (positive aggregate lead).
    EXPECT_GT(crisp.prof->decisionCount(), 0u);
    EXPECT_GT(crisp.prof->decisionLeadCycles(), 0u);
    EXPECT_EQ(crisp.stats.issuedPrioritized > 0, true);

    // The delinquent load — the PC with the most LLC misses, mcf's
    // pointer chase — carries the critical tag on every instance.
    const PcProfiler::LoadEntry *delinq = nullptr;
    uint64_t delinq_pc = 0;
    for (const auto &kv : crisp.prof->loads()) {
        if (!delinq || kv.second.llcMisses > delinq->llcMisses) {
            delinq = &kv.second;
            delinq_pc = kv.first;
        }
    }
    ASSERT_NE(delinq, nullptr);
    EXPECT_GT(delinq->llcMisses, 0u);
    EXPECT_GT(delinq->critical, 0u);

    // Baseline contrast on the *same* tagged trace (so PCs are
    // comparable): oldest-first never bypasses, so the decision log
    // stays empty — and without the two-level pick the delinquent
    // load waits longer from dispatch to issue. That wait gap is
    // the realized issue lead time CRISP buys.
    SimConfig base = cfg;
    base.scheduler = SchedulerPolicy::OldestFirst;
    ProfiledRun ooo =
        runProfiled(*tagged, base, TickModel::Event);
    EXPECT_EQ(ooo.prof->decisionCount(), 0u);
    EXPECT_TRUE(ooo.prof->decisions().empty());
    ASSERT_TRUE(ooo.prof->loads().count(delinq_pc));
    EXPECT_LT(delinq->waitCycles,
              ooo.prof->loads().at(delinq_pc).waitCycles);
}

TEST(PcProfilerRun, ProfilesAreEngineIdentical)
{
    const WorkloadInfo *wl = findWorkload("mcf");
    ASSERT_NE(wl, nullptr);
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    CrispOptions opts;
    auto tagged = cache().taggedRefTrace(*wl, opts, cfg, kTrainOps,
                                         kRefOps);

    ProfiledRun cyc = runProfiled(*tagged, cfg, TickModel::Cycle);
    ProfiledRun evt = runProfiled(*tagged, cfg, TickModel::Event);

    // Both engines issue the same instructions at the same cycles,
    // so the whole attribution — including the decision log and the
    // MLP overlap, which depend on issue *order* — is identical.
    auto load_eq = [](const PcProfiler::LoadEntry &a,
                      const PcProfiler::LoadEntry &b) {
        return a.issues == b.issues && a.llcMisses == b.llcMisses &&
               a.critical == b.critical &&
               a.waitCycles == b.waitCycles &&
               a.robHeadDist == b.robHeadDist &&
               a.mlpOverlap == b.mlpOverlap;
    };
    ASSERT_EQ(cyc.prof->loads().size(), evt.prof->loads().size());
    for (const auto &kv : cyc.prof->loads()) {
        SCOPED_TRACE("pc " + std::to_string(kv.first));
        ASSERT_TRUE(evt.prof->loads().count(kv.first));
        EXPECT_TRUE(
            load_eq(kv.second, evt.prof->loads().at(kv.first)));
    }
    EXPECT_EQ(cyc.prof->decisionCount(), evt.prof->decisionCount());
    EXPECT_EQ(cyc.prof->decisionLeadCycles(),
              evt.prof->decisionLeadCycles());
    ASSERT_EQ(cyc.prof->decisions().size(),
              evt.prof->decisions().size());
    for (const auto &kv : cyc.prof->decisions()) {
        ASSERT_TRUE(evt.prof->decisions().count(kv.first));
        const auto &o = evt.prof->decisions().at(kv.first);
        EXPECT_EQ(kv.second.picks, o.picks);
        EXPECT_EQ(kv.second.leadCycles, o.leadCycles);
    }

    // The registry export (what --stats-json ships) is bit-equal.
    StatRegistry ra, rb;
    cyc.prof->registerInto(ra, "crisp.profile", 32);
    evt.prof->registerInto(rb, "crisp.profile", 32);
    EXPECT_EQ(ra.toJson(), rb.toJson());
}

} // namespace
} // namespace crisp
