/**
 * @file
 * Telemetry subsystem tests: StatRegistry registration/lookup and
 * collision detection, JSON/CSV export round-trips (parsed back with
 * the in-tree JSON parser), the CPI-stack sum invariant on both tick
 * engines, and the Kanata pipeline trace (header, grammar, stage
 * ordering, window limiter and criticality annotations).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "sim/artifact_cache.h"
#include "sim/driver.h"
#include "telemetry/cpi_stack.h"
#include "telemetry/json.h"
#include "telemetry/pipe_tracer.h"
#include "telemetry/stat_registry.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

// ---------------------------------------------------------------
// StatRegistry.
// ---------------------------------------------------------------

TEST(StatRegistry, RegisterAndLookup)
{
    StatRegistry reg;
    reg.addCounter("core.cycles", 1234, "total cycles");
    reg.addScalar("core.ipc", 1.5);
    reg.addInfo("sim.workload", "mcf");
    EXPECT_TRUE(reg.has("core.cycles"));
    EXPECT_FALSE(reg.has("core.retired"));
    EXPECT_EQ(reg.counter("core.cycles"), 1234u);
    EXPECT_DOUBLE_EQ(reg.scalar("core.ipc"), 1.5);
    EXPECT_EQ(reg.at("sim.workload").text, "mcf");
    EXPECT_EQ(reg.at("core.cycles").desc, "total cycles");
    EXPECT_EQ(reg.size(), 3u);
}

TEST(StatRegistry, PathsAreSortedRegardlessOfInsertionOrder)
{
    StatRegistry reg;
    reg.addCounter("dram.row_hits", 1);
    reg.addCounter("core.cycles", 2);
    reg.addCounter("core.retired", 3);
    reg.addCounter("cache.llc.misses", 4);
    std::vector<std::string> expect = {
        "cache.llc.misses", "core.cycles", "core.retired",
        "dram.row_hits"};
    EXPECT_EQ(reg.paths(), expect);
}

TEST(StatRegistry, DoubleRegistrationThrows)
{
    StatRegistry reg;
    reg.addCounter("core.cycles", 1);
    EXPECT_THROW(reg.addCounter("core.cycles", 2),
                 std::logic_error);
    EXPECT_THROW(reg.addScalar("core.cycles", 2.0),
                 std::logic_error);
    // The first registration survives.
    EXPECT_EQ(reg.counter("core.cycles"), 1u);
}

TEST(StatRegistry, LeafNamespaceCollisionThrowsBothWays)
{
    StatRegistry reg;
    reg.addCounter("core.rob.stalls", 1);
    // A leaf at an existing namespace node...
    EXPECT_THROW(reg.addCounter("core.rob", 2), std::logic_error);
    // ...and a namespace under an existing leaf.
    EXPECT_THROW(reg.addCounter("core.rob.stalls.load", 3),
                 std::logic_error);
}

TEST(StatRegistry, RejectsMalformedPathsAndRaggedTables)
{
    StatRegistry reg;
    EXPECT_THROW(reg.addCounter("", 1), std::logic_error);
    EXPECT_THROW(reg.addCounter(".core", 1), std::logic_error);
    EXPECT_THROW(reg.addCounter("core.", 1), std::logic_error);
    EXPECT_THROW(reg.addCounter("core..x", 1), std::logic_error);
    EXPECT_THROW(reg.addTable("t", {}, {}), std::logic_error);
    EXPECT_THROW(reg.addTable("t", {"a", "b"}, {{1, 2}, {3}}),
                 std::logic_error);
}

TEST(StatRegistry, WrongKindAccessThrows)
{
    StatRegistry reg;
    reg.addScalar("x", 1.0);
    EXPECT_THROW(reg.counter("x"), std::logic_error);
    EXPECT_THROW(reg.at("missing"), std::out_of_range);
}

// ---------------------------------------------------------------
// JSON / CSV export.
// ---------------------------------------------------------------

TEST(StatRegistryExport, JsonRoundTripsThroughTheParser)
{
    StatRegistry reg;
    reg.addCounter("core.cycles", 1000);
    reg.addCounter("core.retired", 900);
    reg.addScalar("core.ipc", 0.9);
    reg.addInfo("sim.workload", "tiny \"quoted\"\npath");
    Histogram h(8.0, 4);
    h.add(1.0);
    h.add(9.0);
    h.add(100.0);
    reg.addHistogram("core.issue_wait", h);
    reg.addTable("core.head_stall_by_static", {"sidx", "cycles"},
                 {{0, 17}, {3, 42}});

    std::string json = reg.toJson();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, doc, &err)) << err << "\n" << json;

    const JsonValue *cycles = doc.find("core.cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_DOUBLE_EQ(cycles->number, 1000.0);
    const JsonValue *ipc = doc.find("core.ipc");
    ASSERT_NE(ipc, nullptr);
    EXPECT_DOUBLE_EQ(ipc->number, 0.9);
    const JsonValue *wl = doc.find("sim.workload");
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->text, "tiny \"quoted\"\npath");

    const JsonValue *hist = doc.find("core.issue_wait");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->at("count").number, 3.0);
    ASSERT_TRUE(hist->at("buckets").isArray());
    EXPECT_EQ(hist->at("buckets").elements.size(), 4u);

    const JsonValue *table = doc.find("core.head_stall_by_static");
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->at("rows").elements.size(), 2u);
    EXPECT_DOUBLE_EQ(
        table->at("rows").elements[1].elements[1].number, 42.0);
}

TEST(StatRegistryExport, WriteJsonFileParsesBack)
{
    StatRegistry reg;
    reg.addCounter("a.b", 7);
    reg.addCounter("a.c", 8);
    const std::string path = "telemetry_test_stats.json";
    ASSERT_TRUE(reg.writeJson(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    JsonValue doc;
    ASSERT_TRUE(parseJson(ss.str(), doc, nullptr));
    ASSERT_NE(doc.find("a.b"), nullptr);
    EXPECT_DOUBLE_EQ(doc.find("a.b")->number, 7.0);
    std::remove(path.c_str());
}

TEST(StatRegistryExport, ExportsAreDeterministic)
{
    // Same stats, opposite registration order: identical bytes.
    StatRegistry fwd, rev;
    fwd.addCounter("a.x", 1);
    fwd.addScalar("b.y", 2.5);
    fwd.addInfo("c.z", "w");
    rev.addInfo("c.z", "w");
    rev.addScalar("b.y", 2.5);
    rev.addCounter("a.x", 1);
    EXPECT_EQ(fwd.toJson(), rev.toJson());
    EXPECT_EQ(fwd.toCsv(), rev.toCsv());
}

TEST(StatRegistryExport, CsvIsFlatAndSorted)
{
    StatRegistry reg;
    reg.addCounter("b.n", 2);
    reg.addCounter("a.m", 1);
    std::string csv = reg.toCsv();
    EXPECT_EQ(csv, "stat,value\na.m,1\nb.n,2\n");
}

// ---------------------------------------------------------------
// CPI stack.
// ---------------------------------------------------------------

TEST(CpiStack, ChargeTotalFractionMerge)
{
    CpiStack s;
    s.charge(CpiBucket::Retiring, 60);
    s.charge(CpiBucket::BackendMemory, 30);
    s.charge(CpiBucket::FrontendLatency);
    s.charge(CpiBucket::FrontendLatency, 9);
    EXPECT_EQ(s.total(), 100u);
    EXPECT_EQ(s[CpiBucket::Retiring], 60u);
    EXPECT_DOUBLE_EQ(s.fraction(CpiBucket::BackendMemory), 0.3);
    EXPECT_DOUBLE_EQ(s.fraction(CpiBucket::BadSpeculation), 0.0);

    CpiStack t;
    t.charge(CpiBucket::Retiring, 40);
    t.merge(s);
    EXPECT_EQ(t[CpiBucket::Retiring], 100u);
    EXPECT_EQ(t.total(), 140u);
}

TEST(CpiStack, RegisterIntoEmitsAllBucketsAndFractions)
{
    CpiStack s;
    s.charge(CpiBucket::Retiring, 3);
    s.charge(CpiBucket::BackendCore, 1);
    StatRegistry reg;
    s.registerInto(reg, "cpi");
    for (size_t b = 0; b < kNumCpiBuckets; ++b) {
        std::string name = cpiBucketName(CpiBucket(b));
        EXPECT_TRUE(reg.has("cpi." + name)) << name;
        EXPECT_TRUE(reg.has("cpi." + name + "_fraction")) << name;
    }
    EXPECT_EQ(reg.counter("cpi.total"), 4u);
    EXPECT_DOUBLE_EQ(reg.scalar("cpi.retiring_fraction"), 0.75);
}

class CpiStackWorkload : public ::testing::Test
{
  protected:
    static ArtifactCache &cache()
    {
        static ArtifactCache c;
        return c;
    }

    static CoreStats runOn(const Trace &trace, SimConfig cfg,
                           TickModel model)
    {
        cfg.tickModel = model;
        Core core(trace, cfg);
        return core.run();
    }
};

TEST_F(CpiStackWorkload, BucketsSumToCyclesOnBothEngines)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, 40'000);

    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    for (TickModel m : {TickModel::Cycle, TickModel::Event}) {
        CoreStats s = runOn(*trace, cfg, m);
        EXPECT_EQ(s.cpi.total(), s.cycles);
        // A pointer chase spends real time blocked on memory.
        EXPECT_GT(s.cpi[CpiBucket::Retiring], 0u);
        EXPECT_GT(s.cpi[CpiBucket::BackendMemory], 0u);
    }
}

TEST_F(CpiStackWorkload, CrispTaggedRunKeepsTheInvariant)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    auto trace = cache().taggedRefTrace(*wl, CrispOptions{}, cfg,
                                        20'000, 40'000);
    for (TickModel m : {TickModel::Cycle, TickModel::Event}) {
        CoreStats s = runOn(*trace, cfg, m);
        EXPECT_EQ(s.cpi.total(), s.cycles);
    }
}

// ---------------------------------------------------------------
// CoreStats registry integration + sorted per-static tables.
// ---------------------------------------------------------------

TEST_F(CpiStackWorkload, CoreStatsRegisterIntoProducesSortedTables)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, 40'000);
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    CoreStats s = runOn(*trace, cfg, TickModel::Event);

    auto head = s.sortedHeadStalls();
    EXPECT_EQ(head.size(), s.headStallByStatic.size());
    for (size_t i = 1; i < head.size(); ++i)
        EXPECT_LT(head[i - 1].first, head[i].first);
    auto waits = s.sortedIssueWaits();
    EXPECT_EQ(waits.size(), s.issueWaitByStatic.size());
    for (size_t i = 1; i < waits.size(); ++i)
        EXPECT_LT(waits[i - 1][0], waits[i][0]);

    StatRegistry reg;
    s.registerInto(reg, "ooo");
    EXPECT_EQ(reg.counter("ooo.core.cycles"), s.cycles);
    EXPECT_EQ(reg.counter("ooo.cpi.total"), s.cycles);
    EXPECT_TRUE(reg.has("ooo.core.issue_wait"));
    EXPECT_TRUE(reg.has("ooo.frontend.fetched"));
    EXPECT_TRUE(reg.has("ooo.cache.llc.misses"));
    EXPECT_TRUE(reg.has("ooo.dram.row_hits"));
    EXPECT_TRUE(reg.has("ooo.ibda.marked"));

    // The serialized table rows are the sorted rows.
    const auto &table = reg.at("ooo.core.head_stall_by_static");
    ASSERT_EQ(table.rows.size(), head.size());
    for (size_t i = 0; i < head.size(); ++i) {
        EXPECT_EQ(table.rows[i][0], head[i].first);
        EXPECT_EQ(table.rows[i][1], head[i].second);
    }

    // And the whole registry survives a JSON round-trip.
    JsonValue doc;
    ASSERT_TRUE(parseJson(reg.toJson(), doc, nullptr));
    const JsonValue *cycles = doc.find("ooo.core.cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_DOUBLE_EQ(cycles->number, double(s.cycles));
}

// ---------------------------------------------------------------
// Kanata pipeline tracing.
// ---------------------------------------------------------------

/** A short straight-line program with a load-use chain. */
Trace
tinyTrace()
{
    Assembler a;
    a.movi(1, 0x2000);
    a.poke(0x2000, 0x2040);
    a.ld(2, 1);
    a.add(3, 2, 2);
    a.st(1, 3, 8);
    a.ld(4, 1, 8);
    a.addi(5, 4, 1);
    a.halt();
    auto prog = std::make_shared<Program>(a.finish("tiny"));
    Interpreter interp(prog);
    return interp.run(100);
}

/** Runs @p trace with a tracer attached; returns the Kanata text. */
std::string
traceRun(const Trace &trace, uint64_t start = 0,
         uint64_t end = ~0ULL, size_t *recorded = nullptr)
{
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    PipeTracer tracer("unused.kanata", start, end);
    Core core(trace, cfg);
    core.setTracer(&tracer);
    core.run();
    if (recorded)
        *recorded = tracer.recorded();
    std::ostringstream os;
    tracer.writeTo(os);
    return os.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

TEST(PipeTracer, GoldenHeaderAndGrammar)
{
    Trace t = tinyTrace();
    size_t recorded = 0;
    std::string text = traceRun(t, 0, ~0ULL, &recorded);
    EXPECT_EQ(recorded, t.size());

    auto lines = splitLines(text);
    ASSERT_GE(lines.size(), 3u);
    // Golden prefix: the header is exact; the trace opens by seating
    // the cycle cursor at the first fetch.
    EXPECT_EQ(lines[0], "Kanata\t0004");
    EXPECT_EQ(lines[1].rfind("C=\t", 0), 0u) << lines[1];
    // The first records are the first instruction's start, its two
    // label lines and its fetch-stage start — in exactly this shape.
    EXPECT_EQ(lines[2], "I\t0\t0\t0");
    EXPECT_EQ(lines[3].rfind("L\t0\t0\t0x", 0), 0u) << lines[3];
    EXPECT_EQ(lines[4].rfind("L\t0\t1\tseq=0 fetch=", 0), 0u)
        << lines[4];
    EXPECT_EQ(lines[5], "S\t0\t0\tF");

    // Full grammar check: every line is one of the known record
    // types with the right field count.
    size_t starts = 0, retires = 0;
    for (size_t i = 1; i < lines.size(); ++i) {
        const std::string &l = lines[i];
        ASSERT_FALSE(l.empty());
        std::vector<std::string> f;
        std::istringstream fs(l);
        std::string tok;
        while (std::getline(fs, tok, '\t'))
            f.push_back(tok);
        if (f[0] == "C=" || f[0] == "C") {
            ASSERT_EQ(f.size(), 2u) << l;
            EXPECT_GT(std::stoull(f[1]), 0u) << l;
        } else if (f[0] == "I") {
            ASSERT_EQ(f.size(), 4u) << l;
            ++starts;
        } else if (f[0] == "L") {
            ASSERT_GE(f.size(), 4u) << l;
        } else if (f[0] == "S" || f[0] == "E") {
            ASSERT_EQ(f.size(), 4u) << l;
            EXPECT_TRUE(f[3] == "F" || f[3] == "Dc" ||
                        f[3] == "Ds" || f[3] == "Is" ||
                        f[3] == "Cm" || f[3] == "Rt")
                << l;
        } else if (f[0] == "R") {
            ASSERT_EQ(f.size(), 4u) << l;
            ++retires;
        } else {
            FAIL() << "unknown record: " << l;
        }
    }
    EXPECT_EQ(starts, t.size());
    EXPECT_EQ(retires, t.size());

    // The loads are labelled with their timing class.
    EXPECT_NE(text.find("Load"), std::string::npos);
}

TEST(PipeTracer, StageOrderingInvariants)
{
    Trace t = tinyTrace();
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    PipeTracer tracer("unused.kanata");
    Core core(t, cfg);
    core.setTracer(&tracer);
    CoreStats s = core.run();
    ASSERT_EQ(tracer.recorded(), t.size());

    // Reconstruct per-instruction timestamps from the detail lines.
    std::ostringstream os;
    tracer.writeTo(os);
    auto lines = splitLines(os.str());
    size_t checked = 0;
    for (const auto &l : lines) {
        if (l.rfind("L\t", 0) != 0 ||
            l.find("\t1\tseq=") == std::string::npos)
            continue;
        unsigned long long seq = 0, fetch = 0, dispatch = 0,
                           issue = 0, complete = 0, retire = 0;
        ASSERT_EQ(std::sscanf(l.c_str() + l.find("seq="),
                              "seq=%llu fetch=%llu dispatch=%llu "
                              "issue=%llu complete=%llu retire=%llu",
                              &seq, &fetch, &dispatch, &issue,
                              &complete, &retire),
                  6)
            << l;
        EXPECT_GT(dispatch, fetch) << l;
        EXPECT_GT(issue, dispatch) << l;
        EXPECT_GT(complete, issue) << l;
        EXPECT_LE(complete, retire) << l;
        EXPECT_LE(retire, s.cycles) << l;
        ++checked;
    }
    EXPECT_EQ(checked, t.size());
}

TEST(PipeTracer, WindowLimiterFiltersByFetchCycle)
{
    Trace t = tinyTrace();
    // A window past the end of the run records nothing.
    size_t recorded = ~0u;
    std::string text =
        traceRun(t, 1'000'000, 2'000'000, &recorded);
    EXPECT_EQ(recorded, 0u);
    EXPECT_EQ(text, "Kanata\t0004\n");

    // A window closing at the first fetch cycle records that fetch
    // group only, not the whole program.
    std::string full = traceRun(t);
    auto lines = splitLines(full);
    ASSERT_GE(lines.size(), 2u);
    ASSERT_EQ(lines[1].rfind("C=\t", 0), 0u);
    uint64_t first_fetch = std::stoull(lines[1].substr(3));
    size_t first = 0;
    traceRun(t, 0, first_fetch, &first);
    EXPECT_GT(first, 0u);
    EXPECT_LT(first, t.size());
}

TEST(PipeTracer, CriticalAndForwardAnnotationsAppear)
{
    Trace t = tinyTrace();
    // Hand-tag the loads critical (the tagger would do this from a
    // profile); the scheduler annotation must surface in the labels.
    for (auto &op : t.ops)
        if (op.isLoad())
            op.critical = true;
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    PipeTracer tracer("unused.kanata");
    Core core(t, cfg);
    core.setTracer(&tracer);
    core.run();
    std::ostringstream os;
    tracer.writeTo(os);
    std::string text = os.str();
    EXPECT_NE(text.find(" [critical]"), std::string::npos);
    // st to 0x2008 then ld from 0x2008: forwarded.
    EXPECT_NE(text.find(" [fwd]"), std::string::npos);
}

TEST(PipeTracer, BothEnginesEmitIdenticalTraces)
{
    Trace t = tinyTrace();
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    std::string traces[2];
    TickModel models[2] = {TickModel::Cycle, TickModel::Event};
    for (int i = 0; i < 2; ++i) {
        cfg.tickModel = models[i];
        PipeTracer tracer("unused.kanata");
        Core core(t, cfg);
        core.setTracer(&tracer);
        core.run();
        std::ostringstream os;
        tracer.writeTo(os);
        traces[i] = os.str();
    }
    EXPECT_EQ(traces[0], traces[1]);
}

} // namespace
} // namespace crisp
