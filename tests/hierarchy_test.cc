/**
 * @file
 * Integration tests for the cache hierarchy: level walks, write
 * allocation, instruction fetches and prefetch injection.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.h"

namespace crisp
{
namespace
{

SimConfig
quietConfig()
{
    SimConfig cfg = SimConfig::skylake();
    cfg.enableBop = false;
    cfg.enableStream = false;
    return cfg;
}

constexpr uint64_t kQuiet = 5000;

TEST(Hierarchy, ColdLoadWalksToDram)
{
    SimConfig cfg = quietConfig();
    Hierarchy mem(cfg);
    auto res = mem.load(0x100000, 0x1000, kQuiet);
    EXPECT_EQ(res.servedBy, MemLevel::Dram);
    EXPECT_TRUE(res.llcMiss());
    // Latency at least L1 + LLC + device row access.
    EXPECT_GT(res.readyCycle - kQuiet,
              uint64_t(cfg.l1d.latency + cfg.llc.latency + 50));
}

TEST(Hierarchy, SecondAccessHitsL1AtL1Latency)
{
    SimConfig cfg = quietConfig();
    Hierarchy mem(cfg);
    auto first = mem.load(0x100000, 0x1000, kQuiet);
    uint64_t later = first.readyCycle + 10;
    auto second = mem.load(0x100000, 0x1000, later);
    EXPECT_EQ(second.servedBy, MemLevel::L1);
    EXPECT_EQ(second.readyCycle, later + cfg.l1d.latency);
}

TEST(Hierarchy, L1EvictionStillHitsLlc)
{
    SimConfig cfg = quietConfig();
    Hierarchy mem(cfg);
    mem.load(0x100000, 0x1000, kQuiet);
    // Blow the (32 KiB, 8-way, 64 sets) L1 set of 0x100000 by
    // loading 8 conflicting lines (same set index, different tags).
    uint64_t set_stride = 64ull * 64; // sets * line
    for (unsigned k = 1; k <= 8; ++k)
        mem.load(0x100000 + k * set_stride, 0x1000,
                 kQuiet + 3000 * k);
    auto res = mem.load(0x100000, 0x1000, kQuiet + 40000);
    EXPECT_EQ(res.servedBy, MemLevel::LLC);
}

TEST(Hierarchy, StoreWriteAllocatesAndDirties)
{
    SimConfig cfg = quietConfig();
    Hierarchy mem(cfg);
    auto st = mem.store(0x200000, 0x1000, kQuiet);
    EXPECT_EQ(st.servedBy, MemLevel::Dram); // write-allocate walk
    auto ld = mem.load(0x200000, 0x1000, st.readyCycle + 10);
    EXPECT_EQ(ld.servedBy, MemLevel::L1);
}

TEST(Hierarchy, IfetchUsesInstructionCache)
{
    SimConfig cfg = quietConfig();
    Hierarchy mem(cfg);
    auto first = mem.ifetch(0x1000, kQuiet);
    EXPECT_EQ(first.servedBy, MemLevel::Dram);
    auto again = mem.ifetch(0x1010, first.readyCycle + 5);
    EXPECT_EQ(again.servedBy, MemLevel::L1);
    EXPECT_EQ(mem.l1i().stats().accesses, 2u);
    EXPECT_EQ(mem.l1d().stats().accesses, 0u);
}

TEST(Hierarchy, SoftwarePrefetchFillsL1)
{
    SimConfig cfg = quietConfig();
    Hierarchy mem(cfg);
    mem.prefetchData(0x300000, kQuiet);
    // Demand after the fill completes: L1 hit.
    auto res = mem.load(0x300000, 0x1000, kQuiet + 2000);
    EXPECT_EQ(res.servedBy, MemLevel::L1);
}

TEST(Hierarchy, PrefetchTimelinessMatters)
{
    SimConfig cfg = quietConfig();
    Hierarchy mem(cfg);
    mem.prefetchData(0x400000, kQuiet);
    // Demand immediately after: in-flight merge, ready no earlier
    // than the prefetch completion.
    auto res = mem.load(0x400000, 0x1000, kQuiet + 2);
    EXPECT_EQ(res.servedBy, MemLevel::L1);
    EXPECT_GT(res.readyCycle, kQuiet + 50);
}

TEST(Hierarchy, BopCoversAStream)
{
    SimConfig cfg = SimConfig::skylake(); // prefetchers on
    Hierarchy mem(cfg);
    // March a long unit-stride stream; after warmup the prefetcher
    // should be filling ahead so late demands stop reaching DRAM
    // cold.
    uint64_t cycle = kQuiet;
    unsigned tail_dram = 0;
    for (unsigned i = 0; i < 3000; ++i) {
        auto res =
            mem.load(0x1000000 + uint64_t(i) * 64, 0x1234, cycle);
        cycle += 30;
        if (i >= 2900 && res.servedBy == MemLevel::Dram)
            ++tail_dram;
    }
    EXPECT_GT(mem.prefetchesIssued(), 100u);
    EXPECT_LT(tail_dram, 50u); // most tail demands covered
}

} // namespace
} // namespace crisp
