/**
 * @file
 * Sampled-simulation regression (DESIGN.md §13): snapshot geometry
 * and content, warm-state adoption semantics (tags kept, timing
 * clamped, in-flight prefetches dropped, stats zeroed), stitching
 * algebra (per-interval stats sum to whole-run totals), bit-identity
 * of a 1-interval sampled run with the serial engine and of sampled
 * runs across job counts, per-interval invariant auditing, and the
 * headline fidelity gate: sampled-vs-full IPC error < 1% on all 16
 * bundled workloads × {ooo, crisp, ibda}.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "sim/artifact_cache.h"
#include "sim/driver.h"
#include "sim/sampled.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

constexpr uint64_t kTrainOps = 30'000;
constexpr uint64_t kRefOps = 90'000;

// The pinned sample spec for the fidelity gate: 30k-op intervals
// with a full-interval detailed warm-up. Chosen empirically — the
// worst |IPC error| across all 16 workloads × 3 variants is 0.88%
// (namd/crisp); shorter warm-ups or shorter intervals push several
// workloads past 1% (boundary DRAM row-locality noise dominates).
constexpr uint64_t kSampleOps = 30'000;
constexpr uint64_t kSampleWarmupOps = 30'000;
constexpr double kMaxIpcErrorPct = 1.0;

/** Shared across all instantiations in one process. */
ArtifactCache &
cache()
{
    static ArtifactCache c;
    return c;
}

SimConfig
sampledConfig(SimConfig cfg)
{
    cfg.sampleOps = kSampleOps;
    cfg.sampleWarmupOps = kSampleWarmupOps;
    cfg.sampleJobs = 2;
    return cfg;
}

double
ipcErrorPct(const CoreStats &full, const CoreStats &sampled)
{
    return std::abs(sampled.ipc() / full.ipc() - 1.0) * 100.0;
}

/** Bit-identity on every counter the tick-model regression pins. */
void
expectIdentical(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.robHeadStallCycles, b.robHeadStallCycles);
    EXPECT_EQ(a.robHeadLoadStallCycles, b.robHeadLoadStallCycles);
    EXPECT_EQ(a.llcMissLoads, b.llcMissLoads);
    EXPECT_EQ(a.forwardedLoads, b.forwardedLoads);
    EXPECT_EQ(a.frontend.fetched, b.frontend.fetched);
    EXPECT_EQ(a.frontend.condMispredicts,
              b.frontend.condMispredicts);
    EXPECT_EQ(a.l1i.misses, b.l1i.misses);
    EXPECT_EQ(a.l1d.accesses, b.l1d.accesses);
    EXPECT_EQ(a.l1d.misses, b.l1d.misses);
    EXPECT_EQ(a.llc.misses, b.llc.misses);
    EXPECT_EQ(a.dram.reads, b.dram.reads);
    EXPECT_EQ(a.dram.rowHits, b.dram.rowHits);
    EXPECT_EQ(a.dram.totalLatency, b.dram.totalLatency);
    EXPECT_EQ(a.headStallByStatic, b.headStallByStatic);
    EXPECT_EQ(a.issueWaitByStatic, b.issueWaitByStatic);
    for (size_t bk = 0; bk < kNumCpiBuckets; ++bk) {
        SCOPED_TRACE(cpiBucketName(CpiBucket(bk)));
        EXPECT_EQ(a.cpi.cycles[bk], b.cpi.cycles[bk]);
    }
}

// ---------------------------------------------------------------
// Warm pass: snapshot geometry and content.
// ---------------------------------------------------------------

TEST(WarmPass, SnapshotPositionsFollowWarmupGeometry)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, 40'000);
    const uint64_t n = (trace->size() + 1) / 2; // exactly 2 intervals

    SimConfig cfg = SimConfig::skylake();
    cfg.sampleOps = n;
    cfg.sampleWarmupOps = 0;
    SampledWarmState w0 = buildWarmState(*trace, cfg);
    ASSERT_EQ(w0.snapshots.size(), 2u);
    EXPECT_EQ(w0.snapshots[0].beginOp, 0u);
    EXPECT_EQ(w0.snapshots[1].beginOp, n);

    // A warm-up prefix moves snapshot k to max(0, k*N - W).
    cfg.sampleWarmupOps = 10'000;
    SampledWarmState w1 = buildWarmState(*trace, cfg);
    ASSERT_EQ(w1.snapshots.size(), 2u);
    EXPECT_EQ(w1.snapshots[0].beginOp, 0u);
    EXPECT_EQ(w1.snapshots[1].beginOp, n - 10'000);

    cfg.sampleWarmupOps = 10 * n; // clamps at the trace start
    SampledWarmState w2 = buildWarmState(*trace, cfg);
    ASSERT_EQ(w2.snapshots.size(), 2u);
    EXPECT_EQ(w2.snapshots[1].beginOp, 0u);
}

TEST(WarmPass, SnapshotZeroIsColdAndLaterSnapshotsAreWarm)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, 40'000);
    SimConfig cfg = SimConfig::skylake();
    cfg.sampleOps = (trace->size() + 1) / 2;
    cfg.sampleWarmupOps = 0;
    SampledWarmState warm = buildWarmState(*trace, cfg);
    ASSERT_EQ(warm.snapshots.size(), 2u);
    const MachineSnapshot &cold = warm.snapshots[0];
    const MachineSnapshot &hot = warm.snapshots[1];

    EXPECT_EQ(cold.warmCycle, 0u);
    EXPECT_GT(hot.warmCycle, 0u);
    // The warm pass runs on the stat-free fast path, so warmth shows
    // in cache *content*, never in counters (which adoption would
    // zero anyway).
    EXPECT_EQ(cold.mem.l1d().stats().accesses, 0u);
    EXPECT_EQ(hot.mem.l1d().stats().accesses, 0u);
    uint64_t first_pc = trace->ops[0].pc;
    EXPECT_FALSE(cold.mem.l1i().contains(first_pc));
    EXPECT_TRUE(hot.mem.l1i().contains(first_pc) ||
                hot.mem.llc().contains(first_pc));

    // The data line touched last before the boundary is still warm
    // (L1D, or LLC if an unlucky set conflict evicted it).
    for (uint64_t i = hot.beginOp; i-- > 0;) {
        const MicroOp &op = trace->ops[size_t(i)];
        if (op.cls != OpClass::Load && op.cls != OpClass::Store)
            continue;
        EXPECT_FALSE(cold.mem.l1d().contains(op.effAddr));
        EXPECT_TRUE(hot.mem.l1d().contains(op.effAddr) ||
                    hot.mem.llc().contains(op.effAddr));
        break;
    }
}

// ---------------------------------------------------------------
// Adoption semantics: tags kept, timing clamped, stats zeroed,
// in-flight prefetches dropped.
// ---------------------------------------------------------------

TEST(Adoption, KeepsTagsClampsTimingZeroesStats)
{
    CacheConfig ccfg = SimConfig::skylake().l1d;
    Cache warm("warm", ccfg);
    warm.fill(0x1000, /*ready_cycle=*/500); // demand, far in flight
    warm.fill(0x3000, /*ready_cycle=*/10);  // demand, long complete
    (void)warm.lookup(0x3000, 20);

    Cache cold("cold", ccfg);
    cold.adoptWarmState(warm, /*warm_now=*/50);
    // Tags survive; the in-flight demand line is clamped to ready
    // now, not at its warm-domain fill time.
    EXPECT_TRUE(cold.contains(0x1000));
    EXPECT_TRUE(cold.contains(0x3000));
    Cache::LookupResult r = cold.lookup(0x1000, 0);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.readyCycle, uint64_t(ccfg.latency));
    // Warm-pass accounting does not leak into the interval's stats
    // (the lookup above is the adopter's own first access).
    EXPECT_EQ(cold.stats().accesses, 1u);
    EXPECT_EQ(cold.stats().misses, 0u);
}

TEST(Adoption, DropsInFlightPrefetchesKeepsCompletedOnes)
{
    CacheConfig ccfg = SimConfig::skylake().l1d;
    Cache warm("warm", ccfg);
    warm.fill(0x2000, /*ready_cycle=*/500, /*is_prefetch=*/true);
    warm.fill(0x4000, /*ready_cycle=*/10, /*is_prefetch=*/true);

    Cache cold("cold", ccfg);
    cold.adoptWarmState(warm, /*warm_now=*/50);
    // A speculative fill still in flight at the snapshot is dropped
    // (nothing waits on it); a completed one is warm content.
    EXPECT_FALSE(cold.contains(0x2000));
    EXPECT_TRUE(cold.contains(0x4000));
}

// ---------------------------------------------------------------
// Stitching algebra.
// ---------------------------------------------------------------

TEST(Stitching, OneIntervalSerialRunIsBitIdenticalToFullRun)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, 45'000);
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::OldestFirst;

    Core core(*trace, cfg);
    CoreStats full = core.run();

    SimConfig scfg = cfg;
    scfg.sampleOps = trace->size(); // one interval, cold snapshot
    scfg.sampleJobs = 1;
    SampledResult sampled = runCoreSampled(*trace, scfg);
    ASSERT_EQ(sampled.intervals.size(), 1u);
    expectIdentical(full, sampled.total);
    // With one interval, the stitched total IS the interval.
    expectIdentical(sampled.intervals[0], sampled.total);
}

TEST(Stitching, IntervalStatsSumToWholeRunTotals)
{
    const WorkloadInfo *wl = findWorkload("moses");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, kRefOps);
    SimConfig cfg = sampledConfig(SimConfig::skylake());
    cfg.scheduler = SchedulerPolicy::OldestFirst;

    SampledResult r = runCoreSampled(*trace, cfg);
    ASSERT_EQ(r.intervals.size(),
              (trace->size() + kSampleOps - 1) / kSampleOps);

    CoreStats sum;
    for (const CoreStats &s : r.intervals) {
        // Each interval's CPI stack individually accounts for every
        // measured cycle (the warm-up prefix is subtracted from
        // stack and total alike).
        EXPECT_EQ(s.cpi.total(), s.cycles);
        sum.accumulate(s);
    }
    EXPECT_EQ(sum.cycles, r.total.cycles);
    EXPECT_EQ(sum.retired, r.total.retired);
    EXPECT_EQ(sum.l1d.accesses, r.total.l1d.accesses);
    EXPECT_EQ(sum.llc.misses, r.total.llc.misses);
    EXPECT_EQ(sum.dram.reads, r.total.dram.reads);
    EXPECT_EQ(r.total.cpi.total(), r.total.cycles);
    // Every trace op is measured in exactly one interval.
    EXPECT_EQ(r.total.retired, trace->size());
}

TEST(Stitching, ResultsAreBitIdenticalAtAnyJobCount)
{
    const WorkloadInfo *wl = findWorkload("moses");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, kRefOps);
    SimConfig cfg = sampledConfig(SimConfig::skylake());
    cfg.scheduler = SchedulerPolicy::OldestFirst;

    cfg.sampleJobs = 1;
    SampledResult serial = runCoreSampled(*trace, cfg);
    cfg.sampleJobs = 4;
    SampledResult parallel = runCoreSampled(*trace, cfg);
    expectIdentical(serial.total, parallel.total);
    ASSERT_EQ(serial.intervals.size(), parallel.intervals.size());
    for (size_t k = 0; k < serial.intervals.size(); ++k)
        expectIdentical(serial.intervals[k], parallel.intervals[k]);
}

// ---------------------------------------------------------------
// Guard rails.
// ---------------------------------------------------------------

TEST(Guards, MismatchedWarmStateIsRejected)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, 40'000);
    SimConfig cfg = SimConfig::skylake();
    cfg.sampleOps = 20'000;
    SampledWarmState warm = buildWarmState(*trace, cfg);

    SimConfig other = cfg;
    other.sampleOps = 10'000;
    EXPECT_THROW(runCoreSampled(*trace, other, &warm),
                 std::invalid_argument);
    other = cfg;
    other.sampleWarmupOps = 5'000;
    EXPECT_THROW(runCoreSampled(*trace, other, &warm),
                 std::invalid_argument);

    // A warm state built for a different trace length (wrong
    // snapshot count) is rejected too.
    auto shorter = cache().trace(*wl, InputSet::Ref, 15'000);
    EXPECT_THROW(runCoreSampled(*shorter, cfg, &warm),
                 std::invalid_argument);

    SimConfig unsampled = SimConfig::skylake();
    EXPECT_THROW(runCoreSampled(*trace, unsampled),
                 std::invalid_argument);
    EXPECT_THROW(buildWarmState(*trace, unsampled),
                 std::invalid_argument);
}

TEST(Guards, InvariantCheckerAuditsEveryInterval)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, 40'000);
    SimConfig cfg = SimConfig::skylake();
    cfg.sampleOps = 10'000;
    cfg.sampleWarmupOps = 5'000;
    cfg.sampleJobs = 2;
    cfg.checkInvariants = true;
    cfg.checkEvery = 64;
    // Snapshot adoption must leave every interval core in a state
    // the microarchitectural auditor accepts, from the first tick.
    SampledResult r = runCoreSampled(*trace, cfg);
    EXPECT_EQ(r.total.retired, trace->size());
}

TEST(Guards, EvaluateWorkloadRoutesThroughSampledMode)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    SimConfig cfg = SimConfig::skylake();
    cfg.sampleOps = 15'000;
    cfg.sampleWarmupOps = 15'000;
    cfg.sampleJobs = 2;
    EvalSizes sizes{20'000, 45'000};
    WorkloadEval eval = evaluateWorkload(*wl, cfg, CrispOptions{},
                                         sizes, {"1K"}, &cache());
    EXPECT_GT(eval.ipcBaseline, 0.0);
    EXPECT_GT(eval.ipcCrisp, 0.0);
    EXPECT_GT(eval.ipcIbda.at("1K"), 0.0);
}

// ---------------------------------------------------------------
// The fidelity gate: sampled-vs-full IPC error < 1% on all 16
// workloads × {ooo, crisp, ibda}.
// ---------------------------------------------------------------

class SampledFidelity : public ::testing::TestWithParam<std::string>
{
  protected:
    const WorkloadInfo &wl() const
    {
        const WorkloadInfo *w = findWorkload(GetParam());
        EXPECT_NE(w, nullptr);
        return *w;
    }
};

TEST_P(SampledFidelity, Ooo)
{
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    auto trace = cache().trace(wl(), InputSet::Ref, kRefOps);
    Core core(*trace, cfg);
    CoreStats full = core.run();

    SimConfig scfg = sampledConfig(cfg);
    auto warm = cache().warmState(wl(), InputSet::Ref, kRefOps,
                                  scfg);
    SampledResult sampled =
        runCoreSampled(*trace, scfg, warm.get());
    EXPECT_LT(ipcErrorPct(full, sampled.total), kMaxIpcErrorPct)
        << "full " << full.ipc() << " sampled "
        << sampled.total.ipc();
}

TEST_P(SampledFidelity, Crisp)
{
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    CrispOptions opts;
    auto trace = cache().taggedRefTrace(wl(), opts, cfg, kTrainOps,
                                        kRefOps);
    Core core(*trace, cfg);
    CoreStats full = core.run();

    SimConfig scfg = sampledConfig(cfg);
    auto warm = cache().warmStateTagged(wl(), opts, scfg, kTrainOps,
                                        kRefOps);
    SampledResult sampled =
        runCoreSampled(*trace, scfg, warm.get());
    EXPECT_LT(ipcErrorPct(full, sampled.total), kMaxIpcErrorPct)
        << "full " << full.ipc() << " sampled "
        << sampled.total.ipc();
}

TEST_P(SampledFidelity, Ibda)
{
    SimConfig cfg = ibdaConfig(SimConfig::skylake(), "1K");
    auto trace = cache().trace(wl(), InputSet::Ref, kRefOps);
    Core core(*trace, cfg);
    CoreStats full = core.run();

    SimConfig scfg = sampledConfig(cfg);
    auto warm = cache().warmState(wl(), InputSet::Ref, kRefOps,
                                  scfg);
    SampledResult sampled =
        runCoreSampled(*trace, scfg, warm.get());
    EXPECT_LT(ipcErrorPct(full, sampled.total), kMaxIpcErrorPct)
        << "full " << full.ipc() << " sampled "
        << sampled.total.ipc();
}

/**
 * The PR 7 contract: the streaming producer/consumer schedule (warm
 * pass overlapped with detailed intervals) is bit-identical to the
 * barrier schedule on every workload × scheduler variant.
 */
TEST_P(SampledFidelity, PipelinedMatchesBarrierAllVariants)
{
    struct Variant
    {
        const char *label;
        SimConfig cfg;
        std::shared_ptr<const Trace> trace;
    };
    std::vector<Variant> variants;

    SimConfig ooo = SimConfig::skylake();
    ooo.scheduler = SchedulerPolicy::OldestFirst;
    variants.push_back(
        {"ooo", ooo, cache().trace(wl(), InputSet::Ref, kRefOps)});

    SimConfig crisp_cfg = SimConfig::skylake();
    crisp_cfg.scheduler = SchedulerPolicy::CrispPriority;
    variants.push_back({"crisp", crisp_cfg,
                        cache().taggedRefTrace(wl(), CrispOptions{},
                                               crisp_cfg, kTrainOps,
                                               kRefOps)});

    SimConfig ibda = ibdaConfig(SimConfig::skylake(), "1K");
    variants.push_back(
        {"ibda", ibda, cache().trace(wl(), InputSet::Ref, kRefOps)});

    for (auto &v : variants) {
        SCOPED_TRACE(v.label);
        SimConfig scfg = sampledConfig(v.cfg);
        SampledWarmState warm = buildWarmState(*v.trace, scfg);
        SampledResult barrier =
            runCoreSampled(*v.trace, scfg, &warm);
        SampledResult piped = runCoreSampled(*v.trace, scfg);

        EXPECT_FALSE(barrier.warmPassRan);
        EXPECT_TRUE(piped.warmPassRan);
        ASSERT_EQ(barrier.intervals.size(), piped.intervals.size());
        expectIdentical(barrier.total, piped.total);
        for (size_t k = 0; k < barrier.intervals.size(); ++k) {
            SCOPED_TRACE("interval " + std::to_string(k));
            expectIdentical(barrier.intervals[k],
                            piped.intervals[k]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SampledFidelity,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &pinfo) {
        return pinfo.param;
    });

// ---------------------------------------------------------------
// Pipelined schedule: snapshot lifetime and phase accounting.
// ---------------------------------------------------------------

/**
 * Streaming runs free each snapshot as its interval job adopts it:
 * the backpressure cap bounds how many are simultaneously alive, no
 * matter how many intervals the trace has. The barrier schedule by
 * construction holds all of them.
 */
TEST(Pipelining, SnapshotLifetimeIsBounded)
{
    const WorkloadInfo *wl = findWorkload("mcf");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, kRefOps);

    SimConfig scfg = SimConfig::skylake();
    scfg.sampleOps = 10'000; // 9 intervals of the 90k-op trace
    scfg.sampleWarmupOps = 5'000;
    scfg.sampleJobs = 2;
    const uint64_t num_intervals =
        (trace->size() + scfg.sampleOps - 1) / scfg.sampleOps;
    ASSERT_GE(num_intervals, 8u);

    SampledResult piped = runCoreSampled(*trace, scfg);
    EXPECT_TRUE(piped.warmPassRan);
    EXPECT_GT(piped.peakLiveSnapshots, 0u);
    // The producer stalls at max(2 * jobs, 4) live snapshots.
    EXPECT_LE(piped.peakLiveSnapshots,
              uint64_t(std::max(2 * scfg.sampleJobs, 4u)));

    SampledWarmState warm = buildWarmState(*trace, scfg);
    SampledResult barrier = runCoreSampled(*trace, scfg, &warm);
    EXPECT_EQ(barrier.peakLiveSnapshots, num_intervals);
    expectIdentical(barrier.total, piped.total);
}

/** Phase timing lands in the result: a streaming run reports a warm
 *  phase; a barrier run with external warm state reports none. */
TEST(Pipelining, PhaseTimingIsReported)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    ASSERT_NE(wl, nullptr);
    auto trace = cache().trace(*wl, InputSet::Ref, kRefOps);
    SimConfig scfg = sampledConfig(SimConfig::skylake());

    SampledResult piped = runCoreSampled(*trace, scfg);
    EXPECT_GT(piped.warmSeconds, 0.0);
    EXPECT_GE(piped.detailSeconds, piped.warmSeconds);
    EXPECT_GE(piped.stitchSeconds, 0.0);

    SampledWarmState warm = buildWarmState(*trace, scfg);
    SampledResult barrier = runCoreSampled(*trace, scfg, &warm);
    EXPECT_EQ(barrier.warmSeconds, 0.0);
    EXPECT_GT(barrier.detailSeconds, 0.0);
}

} // namespace
} // namespace crisp
