/**
 * @file
 * Unit and property tests for the cache model: hits/misses, LRU,
 * in-flight (MSHR-merge) timing, MSHR capacity stalls, dirty lines
 * and prefetch accounting. Geometry is swept with TEST_P.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"

namespace crisp
{
namespace
{

CacheConfig
smallCache()
{
    return CacheConfig{1024, 2, 64, 4, 2}; // 8 sets, 2 ways, 2 MSHRs
}

TEST(Cache, ColdMissThenHit)
{
    Cache c("t", smallCache());
    auto r1 = c.lookup(0x1000, 100);
    EXPECT_FALSE(r1.hit);
    c.fill(0x1000, 150);
    auto r2 = c.lookup(0x1000, 200);
    EXPECT_TRUE(r2.hit);
    EXPECT_FALSE(r2.inFlight);
    EXPECT_EQ(r2.readyCycle, 200u + 4u);
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SameLineDifferentWordsHit)
{
    Cache c("t", smallCache());
    c.fill(0x1000, 0);
    EXPECT_TRUE(c.lookup(0x1008, 10).hit);
    EXPECT_TRUE(c.lookup(0x103f, 10).hit);
    EXPECT_FALSE(c.lookup(0x1040, 10).hit); // next line
}

TEST(Cache, InFlightMergeObservesFillTime)
{
    Cache c("t", smallCache());
    c.lookup(0x2000, 100);
    c.fill(0x2000, 400); // miss completes at 400
    auto merged = c.lookup(0x2000, 150);
    EXPECT_TRUE(merged.hit);
    EXPECT_TRUE(merged.inFlight);
    EXPECT_EQ(merged.readyCycle, 400u + 4u);
    EXPECT_EQ(c.stats().mshrMerges, 1u);
    // After the data arrives, hits are normal.
    auto later = c.lookup(0x2000, 500);
    EXPECT_FALSE(later.inFlight);
    EXPECT_EQ(later.readyCycle, 504u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c("t", smallCache()); // 8 sets => set stride 8 lines
    uint64_t set_stride = 8 * 64;
    uint64_t a0 = 0x10000;
    uint64_t a1 = a0 + set_stride;
    uint64_t a2 = a0 + 2 * set_stride;
    c.fill(a0, 0);
    c.fill(a1, 0);
    c.lookup(a0, 10);  // refresh a0
    c.fill(a2, 20);    // evicts a1
    EXPECT_TRUE(c.contains(a0));
    EXPECT_FALSE(c.contains(a1));
    EXPECT_TRUE(c.contains(a2));
}

TEST(Cache, DirtyVictimCountsWriteback)
{
    Cache c("t", smallCache());
    uint64_t set_stride = 8 * 64;
    uint64_t a0 = 0x10000;
    c.fill(a0, 0);
    c.markDirty(a0);
    c.fill(a0 + set_stride, 0);
    uint64_t evicted = c.fill(a0 + 2 * set_stride, 0); // evicts a0
    EXPECT_EQ(evicted, a0);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, MshrCapacityDelaysExtraMisses)
{
    Cache c("t", smallCache()); // 2 MSHRs
    EXPECT_EQ(c.allocateMshr(100, 300), 300u);
    EXPECT_EQ(c.allocateMshr(100, 310), 310u);
    // Third concurrent miss must wait for the earliest completion.
    uint64_t delayed = c.allocateMshr(100, 320);
    EXPECT_EQ(delayed, 320u + (300u - 100u));
    EXPECT_EQ(c.stats().mshrStallCycles, 200u);
    // Once time passes the completions, slots free up again.
    EXPECT_EQ(c.allocateMshr(1000, 1200), 1200u);
}

TEST(Cache, PrefetchAccounting)
{
    Cache c("t", smallCache());
    c.fill(0x3000, 100, /*is_prefetch=*/true);
    EXPECT_EQ(c.stats().prefetchFills, 1u);
    c.lookup(0x3000, 200);
    EXPECT_EQ(c.stats().prefetchHits, 1u);
    // Only the first demand hit counts as a prefetch hit.
    c.lookup(0x3000, 300);
    EXPECT_EQ(c.stats().prefetchHits, 1u);
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache c("t", smallCache());
    c.fill(0x1000, 0);
    c.lookup(0x1000, 10);
    c.reset();
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(CacheStats, MissRatio)
{
    CacheStats s;
    EXPECT_EQ(s.missRatio(), 0.0);
    s.accesses = 10;
    s.misses = 4;
    EXPECT_DOUBLE_EQ(s.missRatio(), 0.4);
}

// ------------------------------------------- parameterized geometry

struct Geometry
{
    uint64_t size;
    unsigned ways;
};

class CacheGeometryTest : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheGeometryTest, FullyPopulatedSetRetainsWays)
{
    auto [size, ways] = GetParam();
    CacheConfig cfg{size, ways, 64, 4, 8};
    Cache c("t", cfg);
    unsigned sets = unsigned(size / (uint64_t(ways) * 64));
    uint64_t stride = uint64_t(sets) * 64;
    // Fill exactly `ways` lines of one set: all must be resident.
    for (unsigned w = 0; w < ways; ++w)
        c.fill(0x40000 + w * stride, 0);
    for (unsigned w = 0; w < ways; ++w)
        EXPECT_TRUE(c.contains(0x40000 + w * stride));
    // One more evicts exactly one line.
    c.fill(0x40000 + uint64_t(ways) * stride, 0);
    unsigned resident = 0;
    for (unsigned w = 0; w <= ways; ++w)
        resident += c.contains(0x40000 + w * stride);
    EXPECT_EQ(resident, ways);
}

TEST_P(CacheGeometryTest, WorkingSetSmallerThanCacheAlwaysHits)
{
    auto [size, ways] = GetParam();
    CacheConfig cfg{size, ways, 64, 4, 8};
    Cache c("t", cfg);
    uint64_t lines = size / 64 / 2; // half capacity
    for (uint64_t i = 0; i < lines; ++i)
        c.fill(0x100000 + i * 64, 0);
    for (uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.lookup(0x100000 + i * 64, 10).hit);
    EXPECT_EQ(c.stats().misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(Geometry{4096, 1}, Geometry{8192, 2},
                      Geometry{32768, 8}, Geometry{1048576, 20}));

} // namespace
} // namespace crisp
