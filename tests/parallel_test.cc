/**
 * @file
 * Tests for the parallel evaluation engine: the worker pool, the
 * artifact cache (hit/miss accounting and key sensitivity to every
 * CrispOptions field), and end-to-end determinism of evaluateAll
 * across job counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "sim/artifact_cache.h"
#include "sim/driver.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

// ---------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u}) {
        ThreadPool pool(jobs);
        EXPECT_EQ(pool.size(), jobs);
        std::vector<int> hits(1000, 0);
        pool.parallelFor(hits.size(),
                         [&](size_t i) { hits[i]++; });
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
                  1000);
        for (int h : hits)
            EXPECT_EQ(h, 1);
    }
}

TEST(ThreadPool, ResultsLandByIndex)
{
    ThreadPool pool(4);
    std::vector<size_t> out(257);
    pool.parallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round)
        pool.parallelFor(10, [&](size_t) { count++; });
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, PropagatesExceptions)
{
    for (unsigned jobs : {1u, 4u}) {
        ThreadPool pool(jobs);
        EXPECT_THROW(
            pool.parallelFor(100,
                             [&](size_t i) {
                                 if (i == 37)
                                     throw std::runtime_error(
                                         "boom");
                             }),
            std::runtime_error);
        // The pool survives a failed batch.
        std::atomic<int> ok{0};
        pool.parallelFor(8, [&](size_t) { ok++; });
        EXPECT_EQ(ok.load(), 8);
    }
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_EQ(pool.size(), ThreadPool::defaultJobs());
}

// ---------------------------------------------------------------
// ThreadPool::Stream (the pipelined sampled path's work feed)
// ---------------------------------------------------------------

TEST(ThreadPoolStream, RunsEverySubmittedTaskExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u}) {
        ThreadPool pool(jobs);
        std::vector<int> hits(500, 0);
        ThreadPool::Stream stream(pool);
        for (size_t i = 0; i < hits.size(); ++i)
            stream.submit([&hits, i] { hits[i]++; });
        stream.wait();
        for (int h : hits)
            EXPECT_EQ(h, 1);
    }
}

TEST(ThreadPoolStream, WaitIsRepeatableAndIncremental)
{
    ThreadPool pool(3);
    ThreadPool::Stream stream(pool);
    std::atomic<int> count{0};
    for (int round = 1; round <= 4; ++round) {
        for (int i = 0; i < 10; ++i)
            stream.submit([&] { count++; });
        stream.wait();
        EXPECT_EQ(count.load(), 10 * round);
    }
}

TEST(ThreadPoolStream, RethrowsFirstTaskException)
{
    for (unsigned jobs : {1u, 4u}) {
        ThreadPool pool(jobs);
        {
            ThreadPool::Stream stream(pool);
            bool threw = false;
            try {
                for (int i = 0; i < 50; ++i)
                    stream.submit([i] {
                        if (i == 13)
                            throw std::runtime_error("boom");
                    });
                stream.wait();
            } catch (const std::runtime_error &) {
                threw = true;
            }
            EXPECT_TRUE(threw);
        }
        // The pool survives a failed stream; parallelFor and a
        // fresh stream both still work.
        std::atomic<int> ok{0};
        pool.parallelFor(8, [&](size_t) { ok++; });
        ThreadPool::Stream again(pool);
        again.submit([&] { ok++; });
        again.wait();
        EXPECT_EQ(ok.load(), 9);
    }
}

TEST(ThreadPoolStream, SizeOnePoolRunsInline)
{
    ThreadPool pool(1);
    ThreadPool::Stream stream(pool);
    std::thread::id runner;
    stream.submit(
        [&] { runner = std::this_thread::get_id(); });
    // Inline execution: the task already ran, on this thread.
    EXPECT_EQ(runner, std::this_thread::get_id());
    stream.wait();
}

TEST(ThreadPoolStream, DestructionDrainsWithoutCommit)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    {
        ThreadPool::Stream stream(pool);
        for (int i = 0; i < 100; ++i)
            stream.submit([&] { count++; });
        // No wait(): the destructor must drain, not abandon.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolStream, ConcurrentProducersAllTasksRunOnce)
{
    // Regression for the lock discipline around the stream's shared
    // deque: several producers submit into one stream while a
    // drainer repeatedly calls wait(). Every task must run exactly
    // once and every wait() must observe a fully-drained stream.
    for (unsigned jobs : {2u, 4u}) {
        ThreadPool pool(jobs);
        ThreadPool::Stream stream(pool);
        constexpr int kProducers = 4;
        constexpr int kPerProducer = 200;
        std::vector<int> hits(kProducers * kPerProducer, 0);
        std::atomic<int> submitted{0};

        std::vector<std::thread> producers;
        for (int p = 0; p < kProducers; ++p)
            producers.emplace_back([&, p] {
                for (int i = 0; i < kPerProducer; ++i) {
                    int slot = p * kPerProducer + i;
                    stream.submit([&hits, slot] { hits[slot]++; });
                    submitted.fetch_add(1);
                }
            });
        // Interleaved waits while producers are still feeding: each
        // wait() drains what has been submitted so far and must not
        // lose tasks racing in behind it.
        for (int w = 0; w < 10; ++w)
            stream.wait();
        for (std::thread &t : producers)
            t.join();
        stream.wait();
        ASSERT_EQ(submitted.load(), kProducers * kPerProducer);
        for (int h : hits)
            EXPECT_EQ(h, 1);
    }
}

TEST(ThreadPoolStream, SizeOnePoolPropagatesInlineError)
{
    // Regression: the inline (size-1) submit path used to store the
    // task's exception into the stream's error slot without taking
    // the stream lock. The error must surface on the next wait()
    // exactly like the pooled path's.
    ThreadPool pool(1);
    ThreadPool::Stream stream(pool);
    stream.submit([] { throw std::runtime_error("inline boom"); });
    bool threw = false;
    try {
        stream.wait();
    } catch (const std::runtime_error &e) {
        threw = true;
        EXPECT_STREQ(e.what(), "inline boom");
    }
    EXPECT_TRUE(threw);
    // The stream recovers: later submissions run normally.
    std::atomic<int> ok{0};
    stream.submit([&] { ok++; });
    stream.wait();
    EXPECT_EQ(ok.load(), 1);
}

// ---------------------------------------------------------------
// ArtifactCache
// ---------------------------------------------------------------

class ArtifactCacheTest : public ::testing::Test
{
  protected:
    const WorkloadInfo &wl() const
    {
        return *findWorkload("pointer_chase");
    }
    SimConfig cfg_ = SimConfig::skylake();
    CrispOptions opts_;
    static constexpr uint64_t kTrain = 20'000;
    static constexpr uint64_t kRef = 30'000;
};

TEST_F(ArtifactCacheTest, TraceHitMissAccounting)
{
    ArtifactCache cache;
    auto t1 = cache.trace(wl(), InputSet::Train, kTrain);
    EXPECT_EQ(cache.counters().misses, 1u);
    EXPECT_EQ(cache.counters().hits, 0u);

    auto t2 = cache.trace(wl(), InputSet::Train, kTrain);
    EXPECT_EQ(cache.counters().misses, 1u);
    EXPECT_EQ(cache.counters().hits, 1u);
    EXPECT_EQ(t1.get(), t2.get()) << "hit must share the artifact";

    // Different input set and different length are different keys.
    cache.trace(wl(), InputSet::Ref, kTrain);
    cache.trace(wl(), InputSet::Train, kTrain + 1);
    EXPECT_EQ(cache.counters().misses, 3u);
}

TEST_F(ArtifactCacheTest, AnalysisSharesTrainTrace)
{
    ArtifactCache cache;
    auto a = cache.analysis(wl(), opts_, cfg_, kTrain);
    ASSERT_NE(a, nullptr);
    // miss(analysis) + miss(train trace) = 2.
    EXPECT_EQ(cache.counters().misses, 2u);

    auto b = cache.analysis(wl(), opts_, cfg_, kTrain);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.counters().misses, 2u);

    // The train trace behind the analysis is the cached one.
    auto t = cache.trace(wl(), InputSet::Train, kTrain);
    EXPECT_EQ(cache.counters().misses, 2u);
    EXPECT_GE(t->size(), 1u);
}

TEST_F(ArtifactCacheTest, TaggedTraceChainsThroughAnalysis)
{
    ArtifactCache cache;
    auto tagged =
        cache.taggedRefTrace(wl(), opts_, cfg_, kTrain, kRef);
    ASSERT_NE(tagged, nullptr);
    // tagged + analysis + train trace.
    EXPECT_EQ(cache.counters().misses, 3u);

    auto again =
        cache.taggedRefTrace(wl(), opts_, cfg_, kTrain, kRef);
    EXPECT_EQ(tagged.get(), again.get());
    EXPECT_EQ(cache.counters().misses, 3u);
}

TEST_F(ArtifactCacheTest, ClearDropsArtifacts)
{
    ArtifactCache cache;
    cache.trace(wl(), InputSet::Train, kTrain);
    cache.clear();
    cache.trace(wl(), InputSet::Train, kTrain);
    EXPECT_EQ(cache.counters().misses, 2u);
}

TEST_F(ArtifactCacheTest, KeySensitiveToEveryOptionsField)
{
    // Each single-field mutation must produce a distinct options
    // key, i.e. a distinct analysis artifact.
    const CrispOptions base;
    std::vector<std::pair<const char *, CrispOptions>> mutations;
    auto add = [&](const char *name, auto &&mutate) {
        CrispOptions o = base;
        mutate(o);
        mutations.emplace_back(name, o);
    };
    add("missShareThreshold",
        [](CrispOptions &o) { o.missShareThreshold = 0.02; });
    add("missRatioThreshold",
        [](CrispOptions &o) { o.missRatioThreshold = 0.25; });
    add("mlpThreshold", [](CrispOptions &o) { o.mlpThreshold = 6; });
    add("execShareMin",
        [](CrispOptions &o) { o.execShareMin = 0.001; });
    add("strideMax", [](CrispOptions &o) { o.strideMax = 0.8; });
    add("branchMispredThreshold",
        [](CrispOptions &o) { o.branchMispredThreshold = 0.2; });
    add("branchExecShareMin",
        [](CrispOptions &o) { o.branchExecShareMin = 0.001; });
    add("enableLoadSlices",
        [](CrispOptions &o) { o.enableLoadSlices = false; });
    add("enableBranchSlices",
        [](CrispOptions &o) { o.enableBranchSlices = false; });
    add("enableLongLatencySlices",
        [](CrispOptions &o) { o.enableLongLatencySlices = true; });
    add("longLatencyExecShareMin",
        [](CrispOptions &o) { o.longLatencyExecShareMin = 0.004; });
    add("criticalPathFilter",
        [](CrispOptions &o) { o.criticalPathFilter = false; });
    add("memDependencies",
        [](CrispOptions &o) { o.memDependencies = false; });
    add("criticalPathFraction",
        [](CrispOptions &o) { o.criticalPathFraction = 0.6; });
    add("maxCriticalRatio",
        [](CrispOptions &o) { o.maxCriticalRatio = 0.3; });
    add("maxInstancesPerRoot",
        [](CrispOptions &o) { o.maxInstancesPerRoot = 12; });
    add("maxAncestorsPerWalk",
        [](CrispOptions &o) { o.maxAncestorsPerWalk = 2048; });

    const std::string base_key = ArtifactCache::optionsKey(base);
    for (const auto &[name, mutated] : mutations)
        EXPECT_NE(ArtifactCache::optionsKey(mutated), base_key)
            << "optionsKey ignores field " << name;

    // And unchanged options round-trip to the same key.
    EXPECT_EQ(ArtifactCache::optionsKey(base),
              ArtifactCache::optionsKey(CrispOptions{}));
}

TEST_F(ArtifactCacheTest, ConfigKeyDistinguishesMachines)
{
    SimConfig a = SimConfig::skylake();
    SimConfig b = SimConfig::withWindow(192, 448);
    EXPECT_NE(ArtifactCache::configKey(a),
              ArtifactCache::configKey(b));
    SimConfig c = a;
    c.enableBop = !c.enableBop;
    EXPECT_NE(ArtifactCache::configKey(a),
              ArtifactCache::configKey(c));
}

TEST_F(ArtifactCacheTest, ConcurrentGettersComputeOnce)
{
    ArtifactCache cache;
    ThreadPool pool(4);
    std::vector<std::shared_ptr<const Trace>> got(8);
    pool.parallelFor(got.size(), [&](size_t i) {
        got[i] = cache.trace(wl(), InputSet::Train, kTrain);
    });
    for (const auto &t : got)
        EXPECT_EQ(t.get(), got[0].get());
    EXPECT_EQ(cache.counters().misses, 1u);
    EXPECT_EQ(cache.counters().hits, got.size() - 1);
}

// ---------------------------------------------------------------
// evaluateAll determinism
// ---------------------------------------------------------------

bool
statsEqual(const CoreStats &a, const CoreStats &b)
{
    return a.cycles == b.cycles && a.retired == b.retired &&
           a.issued == b.issued &&
           a.issuedPrioritized == b.issuedPrioritized &&
           a.robHeadStallCycles == b.robHeadStallCycles &&
           a.llcMissLoads == b.llcMissLoads &&
           a.forwardedLoads == b.forwardedLoads;
}

TEST(EvaluateAll, BitIdenticalAcrossJobCounts)
{
    std::vector<WorkloadInfo> wls = {
        *findWorkload("pointer_chase"), *findWorkload("mcf")};
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{20'000, 30'000};
    std::vector<std::string> ists = {"1K"};

    auto reference =
        evaluateAll(wls, cfg, opts, sizes, /*jobs=*/1, ists);
    ASSERT_EQ(reference.size(), wls.size());

    for (unsigned jobs : {2u, 4u}) {
        auto got = evaluateAll(wls, cfg, opts, sizes, jobs, ists);
        ASSERT_EQ(got.size(), reference.size());
        for (size_t i = 0; i < got.size(); ++i) {
            SCOPED_TRACE("workload " + reference[i].name +
                         " at jobs=" + std::to_string(jobs));
            EXPECT_EQ(got[i].name, reference[i].name);
            // Bit-identical IPC, not just approximately equal.
            EXPECT_EQ(got[i].ipcBaseline,
                      reference[i].ipcBaseline);
            EXPECT_EQ(got[i].ipcCrisp, reference[i].ipcCrisp);
            EXPECT_EQ(got[i].ipcIbda, reference[i].ipcIbda);
            EXPECT_TRUE(statsEqual(got[i].baseStats,
                                   reference[i].baseStats));
            EXPECT_TRUE(statsEqual(got[i].crispStats,
                                   reference[i].crispStats));
            EXPECT_EQ(got[i].analysis.taggedStatics,
                      reference[i].analysis.taggedStatics);
        }
    }
}

TEST(EvaluateAll, MatchesSerialEvaluateWorkload)
{
    const WorkloadInfo &wl = *findWorkload("pointer_chase");
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{20'000, 30'000};

    WorkloadEval serial = evaluateWorkload(wl, cfg, opts, sizes);
    auto batch = evaluateAll({wl}, cfg, opts, sizes, /*jobs=*/4);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].ipcBaseline, serial.ipcBaseline);
    EXPECT_EQ(batch[0].ipcCrisp, serial.ipcCrisp);
}

} // namespace
} // namespace crisp
