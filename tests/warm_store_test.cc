/**
 * @file
 * Tests for the persistent warm-artifact store (DESIGN.md §14):
 * byte-identical disk round-trips, corruption tolerance (truncated,
 * bit-flipped, version-skewed and magic-less files all fall back
 * with a reason, never crash), filename-collision detection via the
 * stored key, the byte-cap eviction policy, temp-file hygiene of the
 * incremental Writer, and dirWritable() probing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "sim/artifact_cache.h"
#include "sim/sampled.h"
#include "sim/warm_store.h"
#include "workloads/workload.h"

namespace fs = std::filesystem;

namespace crisp
{
namespace
{

/** Shared across all tests in this binary. */
ArtifactCache &
cache()
{
    static ArtifactCache c;
    return c;
}

/** A sampled config small enough to warm in milliseconds. */
SimConfig
testConfig()
{
    SimConfig cfg = SimConfig::skylake();
    cfg.sampleOps = 10'000;
    cfg.sampleWarmupOps = 5'000;
    return cfg;
}

/** @return serializeSnapshot() bytes of @p snap. */
std::string
snapshotBytes(const MachineSnapshot &snap)
{
    WarmSink sink;
    serializeSnapshot(snap, sink);
    return sink.bytes();
}

/** Reads a whole file into a string (empty if unreadable). */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    return s;
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

class WarmStoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("crisp_warm_store_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);

        const WorkloadInfo *wl = findWorkload("pointer_chase");
        ASSERT_NE(wl, nullptr);
        trace_ = cache().trace(*wl, InputSet::Ref, 40'000);
        cfg_ = testConfig();
        key_ = warmStateKey(cfg_);
        hash_ = traceContentHash(*trace_);
        warm_ = buildWarmState(*trace_, cfg_);
        ASSERT_GE(warm_.snapshots.size(), 2u);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /** Saves the reference warm state and returns its path. */
    std::string savedPath()
    {
        WarmArtifactStore store(dir_);
        EXPECT_TRUE(store.save(key_, hash_, warm_));
        std::string path = store.pathFor(key_, hash_);
        EXPECT_TRUE(fs::exists(path));
        return path;
    }

    /** Expects load() to reject the artifact with a reason. */
    void expectRejected(const char *what)
    {
        SCOPED_TRACE(what);
        WarmArtifactStore store(dir_);
        SampledWarmState out;
        std::string why;
        EXPECT_FALSE(store.load(key_, hash_, cfg_, out, &why));
        EXPECT_FALSE(why.empty());
    }

    std::string dir_;
    std::shared_ptr<const Trace> trace_;
    SimConfig cfg_;
    std::string key_;
    uint64_t hash_ = 0;
    SampledWarmState warm_;
};

TEST_F(WarmStoreTest, RoundTripIsByteIdentical)
{
    savedPath();
    WarmArtifactStore store(dir_);
    SampledWarmState loaded;
    std::string why;
    ASSERT_TRUE(store.load(key_, hash_, cfg_, loaded, &why)) << why;
    EXPECT_TRUE(why.empty());

    EXPECT_EQ(loaded.intervalOps, warm_.intervalOps);
    EXPECT_EQ(loaded.warmupOps, warm_.warmupOps);
    ASSERT_EQ(loaded.snapshots.size(), warm_.snapshots.size());
    for (size_t k = 0; k < warm_.snapshots.size(); ++k) {
        SCOPED_TRACE("snapshot " + std::to_string(k));
        EXPECT_EQ(loaded.snapshots[k].beginOp,
                  warm_.snapshots[k].beginOp);
        // The loaded machine must re-serialize to the exact bytes
        // of the original — content equality, not just stat
        // equality.
        EXPECT_EQ(snapshotBytes(loaded.snapshots[k]),
                  snapshotBytes(warm_.snapshots[k]));
    }
}

TEST_F(WarmStoreTest, PlainMissLeavesWhyEmpty)
{
    WarmArtifactStore store(dir_);
    SampledWarmState out;
    std::string why = "stale";
    EXPECT_FALSE(store.load(key_, hash_, cfg_, out, &why));
    EXPECT_TRUE(why.empty());
}

TEST_F(WarmStoreTest, TruncatedArtifactFallsBack)
{
    std::string path = savedPath();
    uint64_t full = fs::file_size(path);

    // Mid-payload truncation: checksum catches it.
    fs::resize_file(path, full - 7);
    expectRejected("payload truncated");

    // Header-level truncation: too short to even parse.
    fs::resize_file(path, 10);
    expectRejected("header truncated");
}

TEST_F(WarmStoreTest, BitFlipFallsBack)
{
    std::string path = savedPath();
    std::string bytes = slurp(path);
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() / 2] ^= 0x40;
    spit(path, bytes);
    expectRejected("payload bit flip");
}

TEST_F(WarmStoreTest, VersionMismatchFallsBack)
{
    std::string path = savedPath();
    std::string bytes = slurp(path);
    // u32 format version lives at offset 8, after the 8-byte magic.
    bytes[8] = char(WarmArtifactStore::kFormatVersion + 1);
    spit(path, bytes);
    expectRejected("version skew");
}

TEST_F(WarmStoreTest, BadMagicFallsBack)
{
    std::string path = savedPath();
    std::string bytes = slurp(path);
    bytes[0] = 'X';
    spit(path, bytes);
    expectRejected("bad magic");
}

TEST_F(WarmStoreTest, FilenameCollisionDetectedByStoredKey)
{
    std::string path = savedPath();
    // Simulate a filename-hash collision: the artifact of key_
    // sitting at the path of a different key. The stored full key
    // string must expose the lie.
    SimConfig other_cfg = cfg_;
    other_cfg.sampleWarmupOps = 0;
    std::string other_key = warmStateKey(other_cfg);
    ASSERT_NE(other_key, key_);
    WarmArtifactStore store(dir_);
    fs::copy_file(path, store.pathFor(other_key, hash_));

    SampledWarmState out;
    std::string why;
    EXPECT_FALSE(
        store.load(other_key, hash_, other_cfg, out, &why));
    EXPECT_FALSE(why.empty());
}

TEST_F(WarmStoreTest, EvictionHonorsByteCap)
{
    std::string first = savedPath();
    uint64_t size = fs::file_size(first);
    // Age the first artifact so eviction order is unambiguous.
    fs::last_write_time(first, fs::last_write_time(first) -
                                   std::chrono::hours(1));

    // A cap that fits one artifact but not two: committing the
    // second must evict the first and spare the file just written.
    WarmArtifactStore capped(dir_, size + size / 2);
    EXPECT_TRUE(capped.save(key_, hash_ + 1, warm_));
    EXPECT_FALSE(fs::exists(first));
    EXPECT_TRUE(fs::exists(capped.pathFor(key_, hash_ + 1)));
}

TEST_F(WarmStoreTest, AbandonedWriterLeavesNothingBehind)
{
    WarmArtifactStore store(dir_);
    {
        WarmArtifactStore::Writer writer(store, key_, hash_,
                                         cfg_.sampleOps,
                                         cfg_.sampleWarmupOps);
        ASSERT_FALSE(writer.failed());
        writer.onSnapshot(0, warm_.snapshots[0]);
        // Destroyed without commit(), e.g. an interval job threw.
    }
    EXPECT_FALSE(fs::exists(store.pathFor(key_, hash_)));
    for (const auto &e : fs::directory_iterator(dir_))
        ADD_FAILURE() << "leftover file: " << e.path();
}

TEST_F(WarmStoreTest, StreamedWriterMatchesOneShotSave)
{
    WarmArtifactStore store(dir_);
    {
        WarmArtifactStore::Writer writer(store, key_, hash_,
                                         cfg_.sampleOps,
                                         cfg_.sampleWarmupOps);
        ASSERT_FALSE(writer.failed());
        for (size_t k = 0; k < warm_.snapshots.size(); ++k)
            writer.onSnapshot(k, warm_.snapshots[k]);
        EXPECT_TRUE(writer.commit());
    }
    std::string streamed = slurp(store.pathFor(key_, hash_));

    fs::remove(store.pathFor(key_, hash_));
    ASSERT_TRUE(store.save(key_, hash_, warm_));
    EXPECT_EQ(streamed, slurp(store.pathFor(key_, hash_)));
}

TEST(WarmStoreDir, RejectsPathObstructedByFile)
{
    std::string file =
        (fs::temp_directory_path() / "crisp_warm_store_obstruction")
            .string();
    spit(file, "not a directory");
    std::string under = file + "/sub";

    std::string why;
    EXPECT_FALSE(WarmArtifactStore::dirWritable(under, &why));
    EXPECT_FALSE(why.empty());

    // Constructing a store anyway degrades to always-miss, never a
    // crash: saves fail, loads miss.
    WarmArtifactStore store(under);
    SimConfig cfg = testConfig();
    SampledWarmState out;
    EXPECT_FALSE(store.load(warmStateKey(cfg), 1, cfg, out));
    fs::remove(file);
}

TEST(WarmStoreDir, CreatesMissingDirectory)
{
    std::string dir = (fs::temp_directory_path() /
                       "crisp_warm_store_fresh" / "nested")
                          .string();
    fs::remove_all(fs::temp_directory_path() /
                   "crisp_warm_store_fresh");
    std::string why;
    EXPECT_TRUE(WarmArtifactStore::dirWritable(dir, &why)) << why;
    EXPECT_TRUE(fs::is_directory(dir));
    fs::remove_all(fs::temp_directory_path() /
                   "crisp_warm_store_fresh");
}

} // namespace
} // namespace crisp
