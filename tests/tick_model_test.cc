/**
 * @file
 * Cross-engine equivalence regression: the event-driven engine
 * (TickModel::Event) must produce **bit-identical** CoreStats to the
 * cycle-accurate reference (TickModel::Cycle) — total cycles, retire
 * and issue counts, every stall counter, the per-static tables and
 * the full retire timeline — on every bundled workload, with and
 * without CRISP tagging and with IBDA. Also covers the structured
 * deadlock error: both engines throw SimDeadlockError (the event
 * engine immediately, by proving no future event exists), and the
 * parallel driver annotates it with the (workload, variant) that
 * died.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cpu/core.h"
#include "sim/artifact_cache.h"
#include "sim/driver.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

constexpr uint64_t kTrainOps = 30'000;
constexpr uint64_t kRefOps = 60'000;

/** Shared across all workload instantiations in one process. */
ArtifactCache &
cache()
{
    static ArtifactCache c;
    return c;
}

CoreStats
runWith(const Trace &trace, SimConfig cfg, TickModel model)
{
    cfg.tickModel = model;
    Core core(trace, cfg);
    return core.run(~0ULL, /*record_timeline=*/true);
}

void
expectIdentical(const CoreStats &cyc, const CoreStats &evt)
{
    EXPECT_EQ(cyc.cycles, evt.cycles);
    EXPECT_EQ(cyc.retired, evt.retired);
    EXPECT_EQ(cyc.issued, evt.issued);
    EXPECT_EQ(cyc.issuedPrioritized, evt.issuedPrioritized);
    EXPECT_EQ(cyc.robHeadStallCycles, evt.robHeadStallCycles);
    EXPECT_EQ(cyc.robHeadLoadStallCycles,
              evt.robHeadLoadStallCycles);
    EXPECT_EQ(cyc.llcMissLoads, evt.llcMissLoads);
    EXPECT_EQ(cyc.forwardedLoads, evt.forwardedLoads);

    EXPECT_EQ(cyc.frontend.fetched, evt.frontend.fetched);
    EXPECT_EQ(cyc.frontend.condBranches, evt.frontend.condBranches);
    EXPECT_EQ(cyc.frontend.condMispredicts,
              evt.frontend.condMispredicts);
    EXPECT_EQ(cyc.frontend.indirectMispredicts,
              evt.frontend.indirectMispredicts);
    EXPECT_EQ(cyc.frontend.returnMispredicts,
              evt.frontend.returnMispredicts);
    EXPECT_EQ(cyc.frontend.icacheStallCycles,
              evt.frontend.icacheStallCycles);
    EXPECT_EQ(cyc.frontend.branchStallCycles,
              evt.frontend.branchStallCycles);

    auto expect_cache = [](const CacheStats &a, const CacheStats &b,
                           const char *level) {
        SCOPED_TRACE(level);
        EXPECT_EQ(a.accesses, b.accesses);
        EXPECT_EQ(a.misses, b.misses);
        EXPECT_EQ(a.mshrMerges, b.mshrMerges);
        EXPECT_EQ(a.mshrStallCycles, b.mshrStallCycles);
        EXPECT_EQ(a.prefetchFills, b.prefetchFills);
        EXPECT_EQ(a.prefetchHits, b.prefetchHits);
        EXPECT_EQ(a.writebacks, b.writebacks);
    };
    expect_cache(cyc.l1i, evt.l1i, "l1i");
    expect_cache(cyc.l1d, evt.l1d, "l1d");
    expect_cache(cyc.llc, evt.llc, "llc");

    EXPECT_EQ(cyc.dram.reads, evt.dram.reads);
    EXPECT_EQ(cyc.dram.rowHits, evt.dram.rowHits);
    EXPECT_EQ(cyc.dram.rowConflicts, evt.dram.rowConflicts);
    EXPECT_EQ(cyc.dram.busWaitCycles, evt.dram.busWaitCycles);
    EXPECT_EQ(cyc.dram.totalLatency, evt.dram.totalLatency);

    EXPECT_EQ(cyc.ibda.marked, evt.ibda.marked);
    EXPECT_EQ(cyc.ibda.dltInsertions, evt.ibda.dltInsertions);
    EXPECT_EQ(cyc.ibda.istInsertions, evt.ibda.istInsertions);
    EXPECT_EQ(cyc.ibda.istEvictions, evt.ibda.istEvictions);

    // Per-static tables: exact same keys and values.
    EXPECT_EQ(cyc.headStallByStatic, evt.headStallByStatic);
    EXPECT_EQ(cyc.issueWaitByStatic, evt.issueWaitByStatic);

    // CPI stack: every bucket identical, and both engines' stacks
    // sum exactly to the run's total cycles (each cycle is charged
    // to exactly one bucket, skipped spans included).
    for (size_t b = 0; b < kNumCpiBuckets; ++b) {
        SCOPED_TRACE(cpiBucketName(CpiBucket(b)));
        EXPECT_EQ(cyc.cpi.cycles[b], evt.cpi.cycles[b]);
    }
    EXPECT_EQ(cyc.cpi.total(), cyc.cycles);
    EXPECT_EQ(evt.cpi.total(), evt.cycles);

    // Issue-wait histogram: identical geometry and contents.
    EXPECT_EQ(cyc.issueWaitHist.count(), evt.issueWaitHist.count());
    EXPECT_EQ(cyc.issueWaitHist.buckets(),
              evt.issueWaitHist.buckets());

    // The timeline is the strictest check: it fixes the per-cycle
    // retire count of every single cycle, including the skipped
    // spans the event engine charges in bulk.
    EXPECT_EQ(cyc.retireTimeline, evt.retireTimeline);
}

class TickModelEquivalence
    : public ::testing::TestWithParam<std::string>
{
  protected:
    const WorkloadInfo &wl() const
    {
        const WorkloadInfo *w = findWorkload(GetParam());
        EXPECT_NE(w, nullptr);
        return *w;
    }
};

TEST_P(TickModelEquivalence, BaselineOoo)
{
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    auto trace = cache().trace(wl(), InputSet::Ref, kRefOps);
    expectIdentical(runWith(*trace, cfg, TickModel::Cycle),
                    runWith(*trace, cfg, TickModel::Event));
}

TEST_P(TickModelEquivalence, CrispTagged)
{
    SimConfig cfg = SimConfig::skylake();
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    CrispOptions opts;
    auto trace = cache().taggedRefTrace(wl(), opts, cfg, kTrainOps,
                                        kRefOps);
    expectIdentical(runWith(*trace, cfg, TickModel::Cycle),
                    runWith(*trace, cfg, TickModel::Event));
}

TEST_P(TickModelEquivalence, Ibda)
{
    SimConfig cfg = ibdaConfig(SimConfig::skylake(), "1K");
    auto trace = cache().trace(wl(), InputSet::Ref, kRefOps);
    expectIdentical(runWith(*trace, cfg, TickModel::Cycle),
                    runWith(*trace, cfg, TickModel::Event));
}

std::vector<std::string>
allWorkloads()
{
    return workloadNames();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TickModelEquivalence,
    ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &pinfo) {
        return pinfo.param;
    });

// ---------------------------------------------------------------
// Structured deadlock reporting.
// ---------------------------------------------------------------

/** A program whose only load can never dispatch when lqSize == 0. */
Trace
loadTrace()
{
    Assembler a;
    a.movi(1, 0x2000);
    a.ld(2, 1);
    a.halt();
    auto prog = std::make_shared<Program>(a.finish("deadlock"));
    Interpreter interp(prog);
    return interp.run(1000);
}

TEST(SimDeadlock, EventEngineProvesDeadlockImmediately)
{
    Trace t = loadTrace();
    SimConfig cfg = SimConfig::skylake();
    cfg.lqSize = 0; // loads can never dispatch
    cfg.tickModel = TickModel::Event;
    Core core(t, cfg);
    try {
        core.run();
        FAIL() << "expected SimDeadlockError";
    } catch (const SimDeadlockError &e) {
        // The watchdog fires exactly one window after the last
        // retirement; the event engine reaches that cycle in one
        // jump instead of ticking 2M idle cycles.
        EXPECT_GT(e.cycle, Core::kDeadlockWindow);
        EXPECT_LT(e.retired, e.traceSize);
        EXPECT_EQ(e.traceSize, t.size());
        EXPECT_NE(std::string(e.what()).find("deadlock"),
                  std::string::npos);
    }
}

TEST(SimDeadlock, CycleEngineWatchdogThrowsSameError)
{
    Trace t = loadTrace();
    SimConfig cfg = SimConfig::skylake();
    cfg.lqSize = 0;
    cfg.tickModel = TickModel::Cycle;
    Core core(t, cfg);
    EXPECT_THROW(core.run(), SimDeadlockError);
}

TEST(SimDeadlock, BoundedRunStopsAtMaxCyclesInsteadOfThrowing)
{
    Trace t = loadTrace();
    SimConfig cfg = SimConfig::skylake();
    cfg.lqSize = 0;
    cfg.tickModel = TickModel::Event;
    Core core(t, cfg);
    // A bound below the watchdog window ends the run normally (the
    // cycle engine would tick to the bound; the event engine jumps).
    CoreStats s = core.run(100'000);
    EXPECT_EQ(s.cycles, 100'000u);
    EXPECT_LT(s.retired, t.size());
}

TEST(SimDeadlock, WithContextPreservesFieldsAndAnnotates)
{
    SimDeadlockError e(123, 45, 678);
    SimDeadlockError annotated = e.withContext("mcf/crisp");
    EXPECT_EQ(annotated.cycle, 123u);
    EXPECT_EQ(annotated.retired, 45u);
    EXPECT_EQ(annotated.traceSize, 678u);
    EXPECT_EQ(annotated.context, "mcf/crisp");
    EXPECT_NE(std::string(annotated.what()).find("mcf/crisp"),
              std::string::npos);
}

Program
buildDeadlockProxy(InputSet)
{
    Assembler a;
    a.movi(1, 0x2000);
    a.ld(2, 1);
    a.halt();
    return a.finish("deadlock_proxy");
}

TEST(SimDeadlock, EvaluateWorkloadAnnotatesWorkloadAndVariant)
{
    WorkloadInfo wl{"deadlock_proxy", "always deadlocks",
                    buildDeadlockProxy};
    SimConfig cfg = SimConfig::skylake();
    cfg.lqSize = 0;
    cfg.tickModel = TickModel::Event;
    EvalSizes sizes{1000, 1000};
    try {
        evaluateWorkload(wl, cfg, CrispOptions{}, sizes, {});
        FAIL() << "expected SimDeadlockError";
    } catch (const SimDeadlockError &e) {
        EXPECT_EQ(e.context, "deadlock_proxy/ooo");
        EXPECT_NE(std::string(e.what()).find("deadlock_proxy/ooo"),
                  std::string::npos);
    }
}

} // namespace
} // namespace crisp
