/**
 * @file
 * Unit tests for the decoupled frontend: fetch width, mispredict
 * gating and resume, icache stalls and FDIP prefetch.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/frontend.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"

namespace crisp
{
namespace
{

Trace
loopTrace(int trips, bool random_branch)
{
    Assembler a;
    uint64_t s = 4242;
    for (int i = 0; i < 256; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        a.poke(0x700000 + i * 8, random_branch ? ((s >> 30) & 1) : 1);
    }
    a.movi(1, 0x700000);
    a.movi(2, 0);
    auto loop = a.label();
    auto skip = a.label();
    a.bind(loop);
    a.andi(3, 2, 255 * 8);
    a.ldx(4, 1, 3);
    a.beq(4, 0, skip);
    a.addi(5, 5, 1);
    a.bind(skip);
    a.addi(2, 2, 8);
    a.slti(6, 2, trips * 8);
    a.bne(6, 0, loop);
    a.halt();
    auto prog = std::make_shared<Program>(a.finish("fe"));
    Interpreter interp(prog);
    return interp.run(100000);
}

TEST(Frontend, FetchesAtMostWidthPerCall)
{
    Trace t = loopTrace(200, false);
    SimConfig cfg = SimConfig::skylake();
    Hierarchy mem(cfg);
    Frontend fe(t, cfg, mem);
    std::vector<FetchedOp> out;
    uint64_t cycle = 10000; // skip refresh window
    size_t prev = 0;
    for (int k = 0; k < 400 && !fe.exhausted(); ++k) {
        fe.fetch(cycle, cfg.width, out);
        EXPECT_LE(out.size() - prev, size_t(cfg.width));
        if (out.size() > prev && out.back().mispredicted)
            fe.onBranchResolved(cycle + 5);
        prev = out.size();
        cycle += 20;
    }
    EXPECT_GT(out.size(), 12u);
}

TEST(Frontend, DeliversOpsInTraceOrder)
{
    Trace t = loopTrace(50, false);
    SimConfig cfg = SimConfig::skylake();
    Hierarchy mem(cfg);
    Frontend fe(t, cfg, mem);
    std::vector<FetchedOp> out;
    uint64_t cycle = 10000;
    size_t prev = 0;
    while (!fe.exhausted() && cycle < 200000) {
        fe.fetch(cycle, cfg.width, out);
        ++cycle;
        // Resolve a newly delivered blocking branch (ideal core).
        if (out.size() > prev && out.back().mispredicted)
            fe.onBranchResolved(cycle + 1);
        prev = out.size();
    }
    ASSERT_EQ(out.size(), t.size());
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].traceIdx, uint32_t(i));
}

TEST(Frontend, MispredictBlocksUntilResolved)
{
    Trace t = loopTrace(400, true);
    SimConfig cfg = SimConfig::skylake();
    Hierarchy mem(cfg);
    Frontend fe(t, cfg, mem);
    std::vector<FetchedOp> out;
    uint64_t cycle = 10000;
    // Fetch until the first mispredict is delivered.
    while (out.empty() || !out.back().mispredicted) {
        fe.fetch(cycle, cfg.width, out);
        ++cycle;
        ASSERT_LT(cycle, 200000u);
    }
    size_t at_block = out.size();
    // Further fetches deliver nothing while blocked.
    for (int k = 0; k < 50; ++k)
        fe.fetch(cycle + k, cfg.width, out);
    EXPECT_EQ(out.size(), at_block);
    EXPECT_GE(fe.stats().branchStallCycles, 50u);
    // After resolution fetch resumes at the given cycle.
    fe.onBranchResolved(cycle + 100);
    fe.fetch(cycle + 60, cfg.width, out);
    EXPECT_EQ(out.size(), at_block); // still before resume point
    fe.fetch(cycle + 101, cfg.width, out);
    EXPECT_GT(out.size(), at_block);
}

TEST(Frontend, CountsBranchClasses)
{
    Trace t = loopTrace(300, true);
    SimConfig cfg = SimConfig::skylake();
    Hierarchy mem(cfg);
    Frontend fe(t, cfg, mem);
    std::vector<FetchedOp> out;
    uint64_t cycle = 10000;
    size_t prev = 0;
    while (!fe.exhausted() && cycle < 500000) {
        fe.fetch(cycle, cfg.width, out);
        ++cycle;
        if (out.size() > prev && out.back().mispredicted)
            fe.onBranchResolved(cycle);
        prev = out.size();
    }
    // Two conditional branches per iteration.
    EXPECT_GE(fe.stats().condBranches, 590u);
    EXPECT_GT(fe.stats().condMispredicts, 30u); // random data branch
}

TEST(Frontend, ColdIcacheStallsFetch)
{
    Trace t = loopTrace(50, false);
    SimConfig cfg = SimConfig::skylake();
    Hierarchy mem(cfg);
    Frontend fe(t, cfg, mem);
    std::vector<FetchedOp> out;
    fe.fetch(10000, cfg.width, out);
    // First line is cold: nothing delivered, stall recorded.
    EXPECT_TRUE(out.empty());
    EXPECT_GT(fe.stats().icacheStallCycles, 0u);
}

TEST(Frontend, FdipPrefetchesAhead)
{
    Trace t = loopTrace(400, false);
    SimConfig with = SimConfig::skylake();
    SimConfig without = with;
    without.enableFdip = false;

    auto stalls = [&t](const SimConfig &cfg) {
        Hierarchy mem(cfg);
        Frontend fe(t, cfg, mem);
        std::vector<FetchedOp> out;
        uint64_t cycle = 10000;
        size_t prev = 0;
        while (!fe.exhausted() && cycle < 500000) {
            fe.fetch(cycle, cfg.width, out);
            ++cycle;
            if (out.size() > prev && out.back().mispredicted)
                fe.onBranchResolved(cycle);
            prev = out.size();
        }
        return fe.stats().icacheStallCycles;
    };
    // Loop code is tiny so both converge fast; FDIP must not hurt
    // and the prefetcher path must at least be exercised.
    EXPECT_LE(stalls(with), stalls(without) + 5);
}

} // namespace
} // namespace crisp
