/**
 * @file
 * Unit tests for the crisp_sim command-line parser.
 */

#include <gtest/gtest.h>

#include "sim/cli.h"

namespace crisp
{
namespace
{

TEST(Cli, Defaults)
{
    CliOptions opt = parseCli({});
    EXPECT_TRUE(opt.ok());
    EXPECT_EQ(opt.workload, "pointer_chase");
    EXPECT_EQ(opt.scheduler, "both");
    EXPECT_FALSE(opt.listWorkloads);
    EXPECT_FALSE(opt.machine.enableCriticalDram);
}

TEST(Cli, ParsesEverything)
{
    CliOptions opt = parseCli(
        {"--workload", "lbm", "--scheduler", "crisp", "--ist",
         "64K", "--train", "12345", "--ref", "67890", "--rs", "144",
         "--rob", "336", "--threshold", "0.02",
         "--no-branch-slices", "--no-cp-filter", "--no-mem-deps",
         "--critical-dram", "--div-slices", "--save-trace",
         "/tmp/x.bin"});
    ASSERT_TRUE(opt.ok()) << opt.error;
    EXPECT_EQ(opt.workload, "lbm");
    EXPECT_EQ(opt.scheduler, "crisp");
    EXPECT_EQ(opt.ist, "64K");
    EXPECT_EQ(opt.trainOps, 12345u);
    EXPECT_EQ(opt.refOps, 67890u);
    EXPECT_EQ(opt.machine.rsSize, 144u);
    EXPECT_EQ(opt.machine.robSize, 336u);
    EXPECT_DOUBLE_EQ(opt.analysis.missShareThreshold, 0.02);
    EXPECT_FALSE(opt.analysis.enableBranchSlices);
    EXPECT_FALSE(opt.analysis.criticalPathFilter);
    EXPECT_FALSE(opt.analysis.memDependencies);
    EXPECT_TRUE(opt.machine.enableCriticalDram);
    EXPECT_TRUE(opt.analysis.enableLongLatencySlices);
    EXPECT_EQ(opt.saveTracePath, "/tmp/x.bin");
}

TEST(Cli, HelpAndList)
{
    EXPECT_TRUE(parseCli({"--help"}).showHelp);
    EXPECT_TRUE(parseCli({"--list"}).listWorkloads);
    EXPECT_FALSE(cliUsage().empty());
}

TEST(Cli, RejectsUnknownFlag)
{
    CliOptions opt = parseCli({"--frobnicate"});
    EXPECT_FALSE(opt.ok());
    EXPECT_NE(opt.error.find("--frobnicate"), std::string::npos);
}

TEST(Cli, RejectsMissingValue)
{
    CliOptions opt = parseCli({"--workload"});
    EXPECT_FALSE(opt.ok());
}

TEST(Cli, RejectsBadScheduler)
{
    CliOptions opt = parseCli({"--scheduler", "magic"});
    EXPECT_FALSE(opt.ok());
}

TEST(Cli, RejectsZeroTraceLength)
{
    CliOptions opt = parseCli({"--train", "0"});
    EXPECT_FALSE(opt.ok());
}

TEST(Cli, ParsesTickModel)
{
    EXPECT_EQ(parseCli({}).machine.tickModel, TickModel::Event);
    CliOptions cyc = parseCli({"--tick-model", "cycle"});
    ASSERT_TRUE(cyc.ok()) << cyc.error;
    EXPECT_EQ(cyc.machine.tickModel, TickModel::Cycle);
    CliOptions evt = parseCli({"--tick-model", "event"});
    ASSERT_TRUE(evt.ok()) << evt.error;
    EXPECT_EQ(evt.machine.tickModel, TickModel::Event);
}

TEST(Cli, RejectsBadTickModel)
{
    CliOptions opt = parseCli({"--tick-model", "quantum"});
    EXPECT_FALSE(opt.ok());
    EXPECT_NE(opt.error.find("quantum"), std::string::npos);
    EXPECT_NE(opt.error.find("cycle"), std::string::npos);
    EXPECT_NE(opt.error.find("event"), std::string::npos);
    EXPECT_FALSE(parseCli({"--tick-model"}).ok());
}

TEST(Cli, ParsesInvariantChecking)
{
    // Default-off in a normal (non-CRISP_CHECKED) build; --check
    // enables the default period and --check=N overrides it.
    CliOptions bare = parseCli({"--check"});
    ASSERT_TRUE(bare.ok()) << bare.error;
    EXPECT_TRUE(bare.machine.checkInvariants);
    EXPECT_EQ(bare.machine.checkEvery, 64u);
    CliOptions dense = parseCli({"--check=1"});
    ASSERT_TRUE(dense.ok()) << dense.error;
    EXPECT_TRUE(dense.machine.checkInvariants);
    EXPECT_EQ(dense.machine.checkEvery, 1u);
    CliOptions sparse = parseCli({"--check=4096"});
    ASSERT_TRUE(sparse.ok()) << sparse.error;
    EXPECT_EQ(sparse.machine.checkEvery, 4096u);
}

TEST(Cli, RejectsBadCheckPeriod)
{
    EXPECT_FALSE(parseCli({"--check=0"}).ok());
    EXPECT_FALSE(parseCli({"--check="}).ok());
    EXPECT_FALSE(parseCli({"--check=many"}).ok());
    EXPECT_FALSE(parseCli({"--check=-4"}).ok());
}

TEST(Cli, ParsesTelemetryOutputs)
{
    CliOptions opt = parseCli({"--stats-json", "out.json",
                               "--stats-csv", "out.csv",
                               "--trace-pipe", "pipe.kanata"});
    ASSERT_TRUE(opt.ok()) << opt.error;
    EXPECT_EQ(opt.statsJsonPath, "out.json");
    EXPECT_EQ(opt.statsCsvPath, "out.csv");
    EXPECT_EQ(opt.tracePipePath, "pipe.kanata");
    // No window: record everything.
    EXPECT_EQ(opt.traceStart, 0u);
    EXPECT_EQ(opt.traceEnd, ~0ULL);
}

TEST(Cli, ParsesTracePipeWindow)
{
    CliOptions opt =
        parseCli({"--trace-pipe", "pipe.kanata:10:20"});
    ASSERT_TRUE(opt.ok()) << opt.error;
    EXPECT_EQ(opt.tracePipePath, "pipe.kanata");
    EXPECT_EQ(opt.traceStart, 10u);
    EXPECT_EQ(opt.traceEnd, 20u);
    // A single-cycle window is valid.
    EXPECT_TRUE(parseCli({"--trace-pipe", "p:5:5"}).ok());
}

TEST(Cli, RejectsMalformedTracePipeWindows)
{
    // Inverted window.
    CliOptions inv = parseCli({"--trace-pipe", "file:5:2"});
    EXPECT_FALSE(inv.ok());
    EXPECT_NE(inv.error.find("5"), std::string::npos);
    // Non-numeric bounds.
    EXPECT_FALSE(parseCli({"--trace-pipe", "file:a:b"}).ok());
    EXPECT_FALSE(parseCli({"--trace-pipe", "file:1:x"}).ok());
    EXPECT_FALSE(parseCli({"--trace-pipe", "file:-1:2"}).ok());
    // One bound only, trailing/extra colons, empty path.
    EXPECT_FALSE(parseCli({"--trace-pipe", "file:1"}).ok());
    EXPECT_FALSE(parseCli({"--trace-pipe", "file:1:2:3"}).ok());
    EXPECT_FALSE(parseCli({"--trace-pipe", "file:"}).ok());
    EXPECT_FALSE(parseCli({"--trace-pipe", ":1:2"}).ok());
    EXPECT_FALSE(parseCli({"--trace-pipe"}).ok());
}

TEST(Cli, RejectsDuplicateTelemetryFlags)
{
    CliOptions dup = parseCli(
        {"--stats-json", "a.json", "--stats-json", "b.json"});
    EXPECT_FALSE(dup.ok());
    EXPECT_NE(dup.error.find("duplicate"), std::string::npos);
    EXPECT_FALSE(parseCli({"--stats-csv", "a", "--stats-csv", "b"})
                     .ok());
    EXPECT_FALSE(
        parseCli({"--trace-pipe", "a", "--trace-pipe", "b"}).ok());
    EXPECT_FALSE(parseCli({"--stats-ndjson", "a", "--stats-ndjson",
                           "b", "--stats-every", "100"})
                     .ok());
}

TEST(Cli, ParsesIntervalStreaming)
{
    CliOptions opt = parseCli(
        {"--stats-ndjson", "iv.ndjson", "--stats-every", "5000"});
    ASSERT_TRUE(opt.ok()) << opt.error;
    EXPECT_EQ(opt.statsNdjsonPath, "iv.ndjson");
    EXPECT_EQ(opt.statsEvery, 5000u);

    // A sink without a window length gets the default.
    CliOptions dflt = parseCli({"--stats-ndjson", "iv.ndjson"});
    ASSERT_TRUE(dflt.ok()) << dflt.error;
    EXPECT_EQ(dflt.statsEvery, 10'000u);

    // No sink requested: streaming stays off.
    EXPECT_EQ(parseCli({}).statsEvery, 0u);
}

TEST(Cli, RejectsBadIntervalFlags)
{
    // A zero-length window can never emit a record.
    CliOptions zero = parseCli(
        {"--stats-ndjson", "iv.ndjson", "--stats-every", "0"});
    EXPECT_FALSE(zero.ok());
    EXPECT_NE(zero.error.find("positive"), std::string::npos);
    EXPECT_FALSE(parseCli({"--stats-ndjson", "iv.ndjson",
                           "--stats-every", "-5"})
                     .ok());
    EXPECT_FALSE(parseCli({"--stats-ndjson", "iv.ndjson",
                           "--stats-every", "abc"})
                     .ok());

    // A window length without the NDJSON sink would silently
    // discard every record, so it is rejected up front.
    CliOptions nosink = parseCli({"--stats-every", "5000"});
    EXPECT_FALSE(nosink.ok());
    EXPECT_NE(nosink.error.find("--stats-ndjson"),
              std::string::npos);
}

TEST(Cli, ParsesPcProfiling)
{
    EXPECT_FALSE(parseCli({}).profilePc);

    CliOptions dflt = parseCli({"--profile-pc"});
    ASSERT_TRUE(dflt.ok()) << dflt.error;
    EXPECT_TRUE(dflt.profilePc);
    EXPECT_EQ(dflt.profilePcTop, 32u);

    CliOptions eight = parseCli({"--profile-pc=8"});
    ASSERT_TRUE(eight.ok()) << eight.error;
    EXPECT_TRUE(eight.profilePc);
    EXPECT_EQ(eight.profilePcTop, 8u);
}

TEST(Cli, RejectsBadPcProfilingCounts)
{
    CliOptions bad = parseCli({"--profile-pc=abc"});
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(bad.error.find("abc"), std::string::npos);
    EXPECT_FALSE(parseCli({"--profile-pc=0"}).ok());
    EXPECT_FALSE(parseCli({"--profile-pc="}).ok());
    EXPECT_FALSE(parseCli({"--profile-pc=-3"}).ok());
    EXPECT_FALSE(parseCli({"--profile-pc=4x"}).ok());
}

TEST(Cli, ParsesTraceLengthAliases)
{
    CliOptions opt = parseCli(
        {"--train-ops", "11111", "--ref-ops", "22222"});
    ASSERT_TRUE(opt.ok()) << opt.error;
    EXPECT_EQ(opt.trainOps, 11'111u);
    EXPECT_EQ(opt.refOps, 22'222u);
    // Aliases share the short forms' validation.
    EXPECT_FALSE(parseCli({"--train-ops", "0"}).ok());
    EXPECT_FALSE(parseCli({"--ref-ops", "0"}).ok());
    EXPECT_FALSE(parseCli({"--train-ops", "many"}).ok());
    EXPECT_FALSE(parseCli({"--ref-ops"}).ok());
}

TEST(Cli, ParsesSampleSpec)
{
    // Sampling is off by default.
    EXPECT_EQ(parseCli({}).machine.sampleOps, 0u);

    CliOptions bare = parseCli({"--sample", "30000"});
    ASSERT_TRUE(bare.ok()) << bare.error;
    EXPECT_EQ(bare.machine.sampleOps, 30'000u);
    EXPECT_EQ(bare.machine.sampleWarmupOps, 0u);

    CliOptions warm = parseCli({"--sample", "30000:20000"});
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_EQ(warm.machine.sampleOps, 30'000u);
    EXPECT_EQ(warm.machine.sampleWarmupOps, 20'000u);

    // Long-hand warm-up spelling.
    CliOptions lh = parseCli({"--sample", "30000:warmup=20000"});
    ASSERT_TRUE(lh.ok()) << lh.error;
    EXPECT_EQ(lh.machine.sampleOps, 30'000u);
    EXPECT_EQ(lh.machine.sampleWarmupOps, 20'000u);

    // Interval workers follow --jobs.
    CliOptions jobs =
        parseCli({"--sample", "30000", "--jobs", "7"});
    ASSERT_TRUE(jobs.ok()) << jobs.error;
    EXPECT_EQ(jobs.machine.sampleJobs, 7u);
}

TEST(Cli, RejectsBadSampleSpecs)
{
    EXPECT_FALSE(parseCli({"--sample", "0"}).ok());
    EXPECT_FALSE(parseCli({"--sample"}).ok());
    EXPECT_FALSE(parseCli({"--sample", "many"}).ok());
    EXPECT_FALSE(parseCli({"--sample", "-5"}).ok());
    EXPECT_FALSE(parseCli({"--sample", "10000:"}).ok());
    EXPECT_FALSE(parseCli({"--sample", "10000:abc"}).ok());
    EXPECT_FALSE(parseCli({"--sample", "10000:warmup="}).ok());
    EXPECT_FALSE(parseCli({"--sample", ":5"}).ok());
}

TEST(Cli, RejectsContradictorySampleCombos)
{
    // A windowless pipeline trace would interleave interval-local
    // cycle domains; an explicit window is applied to interval 0.
    CliOptions pipe = parseCli(
        {"--sample", "10000", "--trace-pipe", "p.kanata"});
    EXPECT_FALSE(pipe.ok());
    EXPECT_NE(pipe.error.find("--trace-pipe"), std::string::npos);
    EXPECT_TRUE(parseCli({"--sample", "10000", "--trace-pipe",
                          "p.kanata:0:500"})
                    .ok());

    // Interval NDJSON streaming needs one continuous time series.
    CliOptions nd = parseCli(
        {"--sample", "10000", "--stats-ndjson", "iv.ndjson"});
    EXPECT_FALSE(nd.ok());
    EXPECT_NE(nd.error.find("--stats-ndjson"), std::string::npos);

    // The invariant auditor must fire at least once per interval.
    CliOptions chk =
        parseCli({"--sample", "1000", "--check=5000"});
    EXPECT_FALSE(chk.ok());
    EXPECT_NE(chk.error.find("--check"), std::string::npos);
    EXPECT_TRUE(
        parseCli({"--sample", "5000", "--check=1000"}).ok());
}

TEST(Cli, ParsesArtifactStore)
{
    EXPECT_TRUE(parseCli({}).artifactDir.empty());
    EXPECT_EQ(parseCli({}).artifactMaxBytes, 0u);

    CliOptions opt = parseCli({"--sample", "10000",
                               "--artifact-dir", "/tmp/warm",
                               "--artifact-max-bytes",
                               "1000000"});
    ASSERT_TRUE(opt.ok()) << opt.error;
    EXPECT_EQ(opt.artifactDir, "/tmp/warm");
    EXPECT_EQ(opt.artifactMaxBytes, 1'000'000u);

    // Both flags are documented.
    EXPECT_NE(cliUsage().find("--artifact-dir"),
              std::string::npos);
    EXPECT_NE(cliUsage().find("--artifact-max-bytes"),
              std::string::npos);
}

TEST(Cli, RejectsBadArtifactFlags)
{
    // Warm artifacts only exist in sampled mode.
    CliOptions nosample =
        parseCli({"--artifact-dir", "/tmp/warm"});
    EXPECT_FALSE(nosample.ok());
    EXPECT_NE(nosample.error.find("--sample"), std::string::npos);

    EXPECT_FALSE(parseCli({"--sample", "10000", "--artifact-dir",
                           "/tmp/a", "--artifact-dir", "/tmp/b"})
                     .ok());
    EXPECT_FALSE(
        parseCli({"--sample", "10000", "--artifact-dir", ""})
            .ok());
    EXPECT_FALSE(
        parseCli({"--sample", "10000", "--artifact-dir"}).ok());

    // The byte cap is meaningless without a directory, and must be
    // a number.
    CliOptions capless =
        parseCli({"--sample", "10000", "--artifact-max-bytes",
                  "1000"});
    EXPECT_FALSE(capless.ok());
    EXPECT_NE(capless.error.find("--artifact-dir"),
              std::string::npos);
    EXPECT_FALSE(parseCli({"--sample", "10000", "--artifact-dir",
                           "/tmp/warm", "--artifact-max-bytes",
                           "lots"})
                     .ok());
    EXPECT_FALSE(parseCli({"--sample", "10000", "--artifact-dir",
                           "/tmp/warm", "--artifact-max-bytes"})
                     .ok());
}

TEST(Cli, ParsesRuntimeTrace)
{
    EXPECT_TRUE(parseCli({}).traceRuntimePath.empty());

    CliOptions opt =
        parseCli({"--trace-runtime", "/tmp/runtime.json"});
    ASSERT_TRUE(opt.ok()) << opt.error;
    EXPECT_EQ(opt.traceRuntimePath, "/tmp/runtime.json");

    EXPECT_NE(cliUsage().find("--trace-runtime"),
              std::string::npos);

    // Duplicate / missing / empty paths are parse errors, like the
    // other telemetry output flags.
    EXPECT_FALSE(parseCli({"--trace-runtime", "/tmp/a.json",
                           "--trace-runtime", "/tmp/b.json"})
                     .ok());
    EXPECT_FALSE(parseCli({"--trace-runtime"}).ok());
    EXPECT_FALSE(parseCli({"--trace-runtime", ""}).ok());
}

} // namespace
} // namespace crisp
