/**
 * @file
 * Tests for the host-runtime span tracer (DESIGN.md §17): detached
 * no-op behaviour, slab growth and thread binding, trace-event
 * grammar conformance (every document parses as JSON; ph/pid/tid/
 * ts/dur fields match the Chrome trace-event spec; 'X' spans are
 * well-nested per thread; 'b'/'e' async ids pair up), the per-arg
 * filtered serialization behind the serve `trace` op, and the serve
 * tier's job lifecycle: a --jobs 4 sweep yields exactly one
 * queued/running/lifecycle span chain per job, with queue-wait
 * surfaced in status and result records.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/artifact_cache.h"
#include "sim/thread_pool.h"
#include "telemetry/json.h"
#include "telemetry/runtime_trace.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

/** One parsed trace event, just the grammar-relevant fields. */
struct Ev
{
    char ph = '?';
    int tid = -1;
    double ts = 0;
    double dur = 0;
    uint64_t id = 0;
    std::string name;
    std::string cat;
    std::string argKey;
    std::string argVal;
};

/**
 * Parses a trace document and checks the spec-conformance part of
 * the grammar: valid JSON, the two top-level keys, and per-event
 * field requirements (ph/pid/tid/ts always; dur on 'X'; "s":"t" on
 * 'i'; id on 'b'/'e').  Field failures are reported per event.
 */
std::vector<Ev>
parseTrace(const std::string &doc)
{
    std::vector<Ev> out;
    JsonValue root;
    std::string err;
    EXPECT_TRUE(parseJson(doc, root, &err)) << err;
    if (!root.isObject())
        return out;
    EXPECT_TRUE(root.has("displayTimeUnit"));
    if (!root.has("traceEvents") ||
        !root.at("traceEvents").isArray()) {
        ADD_FAILURE() << "no traceEvents array";
        return out;
    }
    for (const JsonValue &j : root.at("traceEvents").elements) {
        if (!j.isObject() || !j.has("ph") ||
            !j.at("ph").isString() || j.at("ph").text.size() != 1 ||
            !j.has("pid") || !j.has("tid") || !j.has("ts") ||
            !j.has("name") || !j.at("name").isString() ||
            !j.has("cat") || !j.at("cat").isString()) {
            ADD_FAILURE() << "event missing required fields";
            continue;
        }
        Ev ev;
        ev.ph = j.at("ph").text[0];
        EXPECT_TRUE(ev.ph == 'X' || ev.ph == 'i' || ev.ph == 'b' ||
                    ev.ph == 'e')
            << "unknown phase " << ev.ph;
        EXPECT_EQ(j.at("pid").number, 1.0);
        ev.tid = int(j.at("tid").number);
        ev.ts = j.at("ts").number;
        EXPECT_GE(ev.ts, 0.0);
        ev.name = j.at("name").text;
        ev.cat = j.at("cat").text;
        if (ev.ph == 'X') {
            EXPECT_TRUE(j.has("dur")) << ev.name;
            ev.dur = j.has("dur") ? j.at("dur").number : 0.0;
            EXPECT_GE(ev.dur, 0.0);
        }
        if (ev.ph == 'i') {
            EXPECT_TRUE(j.has("s") && j.at("s").text == "t")
                << ev.name;
        }
        if (ev.ph == 'b' || ev.ph == 'e') {
            EXPECT_TRUE(j.has("id")) << ev.name;
            ev.id = j.has("id") ? uint64_t(j.at("id").number) : 0;
        }
        if (j.has("args") && j.at("args").isObject() &&
            !j.at("args").members.empty()) {
            ev.argKey = j.at("args").members.begin()->first;
            ev.argVal = j.at("args").members.begin()->second.text;
        }
        out.push_back(ev);
    }
    return out;
}

/** Asserts the 'X' spans of every tid nest properly: sorted by
 *  begin, each span must close before the innermost open one. */
void
expectWellNested(const std::vector<Ev> &events)
{
    std::map<int, std::vector<Ev>> byTid;
    for (const Ev &ev : events)
        if (ev.ph == 'X')
            byTid[ev.tid].push_back(ev);
    constexpr double eps = 1e-9;
    for (auto &[tid, spans] : byTid) {
        std::sort(spans.begin(), spans.end(),
                  [](const Ev &a, const Ev &b) {
                      return a.ts != b.ts ? a.ts < b.ts
                                          : a.dur > b.dur;
                  });
        std::vector<double> open; // stack of end timestamps
        for (const Ev &ev : spans) {
            while (!open.empty() && open.back() <= ev.ts + eps)
                open.pop_back();
            if (!open.empty())
                EXPECT_LE(ev.ts + ev.dur, open.back() + eps)
                    << ev.name << " overlaps the enclosing span "
                    << "on tid " << tid;
            open.push_back(ev.ts + ev.dur);
        }
    }
}

/** Asserts every async id appears exactly once as 'b' and once as
 *  'e', same name, begin not after end. */
void
expectAsyncPairsMatch(const std::vector<Ev> &events)
{
    std::map<uint64_t, std::vector<const Ev *>> byId;
    for (const Ev &ev : events)
        if (ev.ph == 'b' || ev.ph == 'e')
            byId[ev.id].push_back(&ev);
    for (const auto &[id, pair] : byId) {
        ASSERT_EQ(pair.size(), 2u) << "async id " << id;
        const Ev *b = pair[0]->ph == 'b' ? pair[0] : pair[1];
        const Ev *e = pair[0]->ph == 'e' ? pair[0] : pair[1];
        EXPECT_EQ(b->ph, 'b');
        EXPECT_EQ(e->ph, 'e');
        EXPECT_EQ(b->name, e->name);
        EXPECT_LE(b->ts, e->ts + 1e-9);
    }
}

/** Count of events matching @p pred. */
template <typename Pred>
size_t
countIf(const std::vector<Ev> &events, Pred pred)
{
    return size_t(std::count_if(events.begin(), events.end(), pred));
}

// ---------------------------------------------------------------
// Tracer core
// ---------------------------------------------------------------

TEST(RuntimeTracerTest, DetachedHooksAreNoOps)
{
    ASSERT_EQ(RuntimeTracer::active(), nullptr);
    {
        TraceSpan span("t", "noop");
        EXPECT_FALSE(span.on());
        span.setArg("k", std::string("ignored"));
    }
    // A constructed-but-never-activated tracer records nothing.
    RuntimeTracer tracer;
    EXPECT_EQ(RuntimeTracer::active(), nullptr);
    {
        TraceSpan span("t", "still_noop");
        EXPECT_FALSE(span.on());
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    auto events = parseTrace(tracer.toJson());
    EXPECT_TRUE(events.empty());
}

TEST(RuntimeTracerTest, SpansInstantsAndAsyncPairsSerialize)
{
    RuntimeTracer tracer;
    tracer.activate();
    {
        TraceSpan outer("cat1", "outer");
        EXPECT_TRUE(outer.on());
        outer.setArg("key", std::string("value"));
        TraceSpan inner("cat1", "inner");
        inner.setArg("n", uint64_t(42));
    }
    tracer.recordInstant("cat2", "tick", "why", "because");
    tracer.recordAsyncPair("cat2", "wait", tracer.nowNs(),
                           tracer.nowNs() + 1000);
    tracer.deactivate();

    auto events = parseTrace(tracer.toJson());
    ASSERT_EQ(events.size(), 5u);
    expectWellNested(events);
    expectAsyncPairsMatch(events);
    EXPECT_EQ(countIf(events,
                      [](const Ev &e) {
                          return e.ph == 'X' && e.name == "inner";
                      }),
              1u);
    EXPECT_EQ(countIf(events,
                      [](const Ev &e) {
                          return e.ph == 'i' && e.name == "tick" &&
                                 e.argVal == "because";
                      }),
              1u);
    // RAII spans record at destruction: inner lands before outer in
    // the slab, but outer's ts is the earlier one.
    const Ev *outerEv = nullptr, *innerEv = nullptr;
    for (const Ev &e : events) {
        if (e.name == "outer")
            outerEv = &e;
        if (e.name == "inner")
            innerEv = &e;
    }
    ASSERT_TRUE(outerEv && innerEv);
    EXPECT_LE(outerEv->ts, innerEv->ts + 1e-9);
    EXPECT_EQ(outerEv->argKey, "key");
    EXPECT_EQ(outerEv->argVal, "value");
    EXPECT_EQ(innerEv->argVal, "42");
}

TEST(RuntimeTracerTest, ArgValuesTruncateAtInlineCapacity)
{
    RuntimeTracer tracer;
    tracer.activate();
    const std::string longVal(200, 'x');
    {
        TraceSpan span("t", "long");
        span.setArg("k", longVal);
    }
    tracer.deactivate();
    auto events = parseTrace(tracer.toJson());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].argVal,
              std::string(TraceEvent::kArgValBytes, 'x'));
}

TEST(RuntimeTracerTest, FilteredJsonKeepsOnlyMatchingArgs)
{
    RuntimeTracer tracer;
    tracer.activate();
    tracer.recordInstant("t", "a", "job", "j-1");
    tracer.recordInstant("t", "b", "job", "j-2");
    tracer.recordInstant("t", "c", "other", "j-1");
    tracer.recordInstant("t", "d");
    tracer.deactivate();

    auto all = parseTrace(tracer.toJson());
    EXPECT_EQ(all.size(), 4u);
    auto onlyJ1 = parseTrace(tracer.toJson("job", "j-1"));
    ASSERT_EQ(onlyJ1.size(), 1u);
    EXPECT_EQ(onlyJ1[0].name, "a");
    EXPECT_TRUE(parseTrace(tracer.toJson("job", "j-9")).empty());
}

TEST(RuntimeTracerTest, PreEpochTimestampsClampToZero)
{
    const auto before = std::chrono::steady_clock::now();
    RuntimeTracer tracer;
    EXPECT_EQ(tracer.toNs(before), 0u);
    EXPECT_GE(tracer.toNs(std::chrono::steady_clock::now()), 0u);
}

TEST(RuntimeTracerTest, SlabOverflowGrowsWithoutDropping)
{
    RuntimeTracer tracer;
    tracer.activate();
    const size_t total = TraceSlab::kCapacity + 100;
    for (size_t i = 0; i < total; ++i)
        tracer.recordSpan("t", "e", i, i + 1);
    tracer.deactivate();
    EXPECT_EQ(tracer.eventCount(), total);
    EXPECT_EQ(tracer.dropped(), 0u);
    // The overflow slab keeps the owning thread's tid.
    auto events = parseTrace(tracer.toJson());
    ASSERT_EQ(events.size(), total);
    for (const Ev &ev : events)
        EXPECT_EQ(ev.tid, events[0].tid);
}

TEST(RuntimeTracerTest, GenerationRebindsAcrossTracers)
{
    {
        RuntimeTracer first;
        first.activate();
        TraceSpan("t", "one");
        EXPECT_EQ(first.eventCount(), 1u);
    } // destructor deactivates
    EXPECT_EQ(RuntimeTracer::active(), nullptr);
    RuntimeTracer second; // may reuse the first tracer's address
    second.activate();
    TraceSpan("t", "two");
    second.deactivate();
    auto events = parseTrace(second.toJson());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "two");
}

// ---------------------------------------------------------------
// Real instrumentation sites
// ---------------------------------------------------------------

TEST(RuntimeTraceSitesTest, PoolAndCacheSpansAreWellFormed)
{
    RuntimeTracer tracer;
    tracer.activate();
    {
        ThreadPool pool(3);
        pool.parallelFor(8, [](size_t) {
            TraceSpan span("test", "body");
        });
        ThreadPool::Stream stream(pool);
        for (int i = 0; i < 4; ++i)
            stream.submit([] { TraceSpan span("test", "stream_body"); });
        stream.wait();

        const WorkloadInfo *wl = findWorkload("pointer_chase");
        ASSERT_NE(wl, nullptr);
        ArtifactCache cache;
        cache.trace(*wl, InputSet::Ref, 2'000);
        cache.trace(*wl, InputSet::Ref, 2'000); // hit: no new compute
    }
    tracer.deactivate();

    auto events = parseTrace(tracer.toJson());
    expectWellNested(events);
    expectAsyncPairsMatch(events);
    EXPECT_EQ(countIf(events,
                      [](const Ev &e) {
                          return e.name == "pool.task";
                      }),
              8u);
    EXPECT_EQ(countIf(events,
                      [](const Ev &e) {
                          return e.name == "pool.stream_task";
                      }),
              4u);
    EXPECT_EQ(countIf(events,
                      [](const Ev &e) {
                          return e.name == "cache.compute" &&
                                 e.ph == 'X';
                      }),
              1u);
}

// ---------------------------------------------------------------
// Serve lifecycle
// ---------------------------------------------------------------

/** A sweep over pointer_chase x @p variants with tiny traces. */
SweepRequest
tinySweep(std::vector<std::string> variants)
{
    SweepRequest req;
    req.workloads = {"pointer_chase"};
    req.variants = std::move(variants);
    req.trainOps = 5'000;
    req.refOps = 10'000;
    return req;
}

SweepServer::JobRunner
instantRunner()
{
    return [](const JobSpec &, ArtifactCache &,
              const CancelToken &) {
        JobOutcome out;
        out.ipc = 2.0;
        out.statsJson = "{}\n";
        return out;
    };
}

TEST(ServeTraceTest, OneLifecycleChainPerJob)
{
    ServeConfig cfg;
    cfg.jobs = 4;
    cfg.traceRuntime = true;
    SweepServer server(cfg, instantRunner());
    server.start();
    ASSERT_TRUE(server.tracing());

    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(
        tinySweep({"ooo", "crisp", "ibda-1K", "ibda-8K"}), sub,
        &err))
        << err;
    ASSERT_EQ(sub.jobs.size(), 4u);
    server.drain();

    auto events = parseTrace(server.traceJson(""));
    expectWellNested(events);
    expectAsyncPairsMatch(events);
    for (const auto &job : sub.jobs) {
        const std::string &id = job.id;
        auto forJob = [&](char ph, const char *name) {
            return countIf(events, [&](const Ev &e) {
                return e.ph == ph && e.name == name &&
                       e.argKey == "job" && e.argVal == id;
            });
        };
        EXPECT_EQ(forJob('b', "job.queued"), 1u) << id;
        EXPECT_EQ(forJob('e', "job.queued"), 1u) << id;
        EXPECT_EQ(forJob('X', "job.running"), 1u) << id;
        EXPECT_EQ(forJob('b', "job.lifecycle"), 1u) << id;
        EXPECT_EQ(forJob('e', "job.lifecycle"), 1u) << id;

        // The per-job filtered trace contains that job's chain and
        // nothing belonging to the other jobs.
        auto own = parseTrace(server.traceJson(id));
        EXPECT_GE(own.size(), 5u) << id;
        for (const Ev &ev : own)
            EXPECT_EQ(ev.argVal, id);
    }

    // Queue-wait made it into status and the latency histograms.
    JobStatus st = server.status({sub.jobs[0].id})[0];
    EXPECT_GE(st.queueWaitMs, 0.0);
    // The latency histograms registered under serve.latency.* (the
    // registry export nests the dotted paths).
    JsonValue stats;
    ASSERT_TRUE(parseJson(server.metricsJson(), stats, nullptr));
    ASSERT_TRUE(stats.has("serve") &&
                stats.at("serve").has("latency"));
    const JsonValue &lat = stats.at("serve").at("latency");
    for (const char *h : {"queue_wait_ms", "job_wall_ms", "warm_ms",
                          "detail_ms", "stitch_ms"})
        EXPECT_TRUE(lat.has(h)) << h;
    EXPECT_EQ(lat.at("queue_wait_ms").at("count").number, 4.0);
    // The four gauges export as plain scalars, not counters.
    EXPECT_EQ(stats.at("serve").at("queue").at("depth").number,
              0.0);
    EXPECT_EQ(stats.at("serve").at("jobs").at("running").number,
              0.0);
    server.shutdown(false);
}

TEST(ServeTraceTest, TraceOpRequiresTracingServer)
{
    ServeConfig cfg;
    cfg.jobs = 1;
    SweepServer plain(cfg, instantRunner());
    plain.start();
    std::vector<std::string> lines;
    handleRequestLine(plain, "{\"op\":\"trace\"}",
                      [&](const std::string &l) {
                          lines.push_back(l);
                      });
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"ok\":false"), std::string::npos);
    EXPECT_NE(lines[0].find("--trace-runtime"), std::string::npos);
    plain.shutdown(false);

    cfg.traceRuntime = true;
    SweepServer traced(cfg, instantRunner());
    traced.start();
    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(traced.submit(tinySweep({"ooo"}), sub, &err)) << err;
    traced.drain();

    lines.clear();
    handleRequestLine(traced,
                      "{\"op\":\"trace\",\"job\":" +
                          jsonQuote(sub.jobs[0].id) + "}",
                      [&](const std::string &l) {
                          lines.push_back(l);
                      });
    ASSERT_EQ(lines.size(), 1u);
    JsonValue resp;
    ASSERT_TRUE(parseJson(lines[0], resp, nullptr));
    ASSERT_TRUE(resp.has("ok") && resp.at("ok").boolean);
    ASSERT_TRUE(resp.has("trace_json"));
    auto events = parseTrace(resp.at("trace_json").text);
    EXPECT_GE(events.size(), 5u);
    for (const Ev &ev : events)
        EXPECT_EQ(ev.argVal, sub.jobs[0].id);
    traced.shutdown(false);
}

TEST(ServeTraceTest, QueueWaitSurfacesInStatusAndResults)
{
    ServeConfig cfg;
    cfg.jobs = 1;
    SweepServer server(cfg, instantRunner());
    server.start();
    SweepServer::Submitted sub;
    std::string err;
    ASSERT_TRUE(server.submit(tinySweep({"ooo"}), sub, &err)) << err;
    server.drain();
    const std::string id = sub.jobs[0].id;

    // status op: the wire record carries queue_wait_ms.
    std::vector<std::string> lines;
    handleRequestLine(server,
                      "{\"op\":\"status\",\"jobs\":[" +
                          jsonQuote(id) + "]}",
                      [&](const std::string &l) {
                          lines.push_back(l);
                      });
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"queue_wait_ms\":"),
              std::string::npos)
        << lines[0];

    // stream op: the terminal result event carries it too.
    lines.clear();
    handleRequestLine(server,
                      "{\"op\":\"stream\",\"job\":" +
                          jsonQuote(id) + "}",
                      [&](const std::string &l) {
                          lines.push_back(l);
                      });
    bool sawResult = false;
    for (const std::string &l : lines) {
        JsonValue ev;
        if (!parseJson(l, ev, nullptr) || !ev.isObject())
            continue;
        if (ev.has("event") && ev.at("event").text == "result") {
            sawResult = true;
            EXPECT_TRUE(ev.has("queue_wait_ms")) << l;
            EXPECT_GE(ev.at("queue_wait_ms").number, 0.0);
        }
    }
    EXPECT_TRUE(sawResult);
    server.shutdown(false);
}

} // namespace
} // namespace crisp
