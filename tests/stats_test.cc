/**
 * @file
 * Unit tests for the stats helpers and the report table printer.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "sim/stats.h"
#include "sim/table.h"
#include "telemetry/json.h"
#include "telemetry/stat_registry.h"

namespace crisp
{
namespace
{

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Formatting)
{
    EXPECT_EQ(percent(0.084), "8.4%");
    EXPECT_EQ(percent(0.084, 2), "8.40%");
    EXPECT_EQ(percent(-0.05), "-5.0%");
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(3.0, 0), "3");
}

TEST(Histogram, CountsAndAverage)
{
    Histogram h(10.0, 10);
    h.add(5);
    h.add(15);
    h.add(25);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.average(), 15.0);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
}

TEST(Histogram, OverflowClampsToLastBucket)
{
    Histogram h(1.0, 4);
    h.add(100.0);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Histogram, Percentile)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(double(i));
    EXPECT_NEAR(h.percentile(50), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(90), 90.0, 1.5);
    Histogram empty(1.0, 4);
    EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
}

TEST(Histogram, MergeAccumulatesSamples)
{
    Histogram a(10.0, 4);
    a.add(5);
    a.add(15);
    Histogram b(10.0, 4);
    b.add(15);
    b.add(35);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.buckets()[0], 1u);
    EXPECT_EQ(a.buckets()[1], 2u);
    EXPECT_EQ(a.buckets()[3], 1u);
    EXPECT_DOUBLE_EQ(a.average(), (5.0 + 15.0 + 15.0 + 35.0) / 4.0);
    // The merged-from histogram is untouched.
    EXPECT_EQ(b.count(), 2u);
}

TEST(Histogram, MergeOfEmptyIsIdentity)
{
    Histogram a(10.0, 4);
    a.add(7);
    Histogram empty(10.0, 4);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.average(), 7.0);
}

TEST(Histogram, MergeRejectsMismatchedGeometry)
{
    Histogram a(10.0, 4);
    Histogram wrong_count(10.0, 8);
    Histogram wrong_width(5.0, 4);
    EXPECT_THROW(a.merge(wrong_count), std::invalid_argument);
    EXPECT_THROW(a.merge(wrong_width), std::invalid_argument);
    EXPECT_DOUBLE_EQ(a.bucketWidth(), 10.0);
}

TEST(Histogram, QuantilesExportedByRegistry)
{
    // The registry's histogram export carries the full quantile
    // ladder (p50/p90/p95/p99) so run-diff tooling (crisp_report)
    // can compare tail latencies without reconstructing them from
    // raw buckets.
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(double(i));

    StatRegistry reg;
    reg.addHistogram("core.issue_wait", h);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(reg.toJson(), doc, &err)) << err;
    const JsonValue *hist = doc.find("core.issue_wait");
    ASSERT_NE(hist, nullptr);
    for (const char *q : {"p50", "p90", "p95", "p99"}) {
        SCOPED_TRACE(q);
        ASSERT_TRUE(hist->has(q));
        EXPECT_DOUBLE_EQ(hist->at(q).number,
                         h.percentile(std::atof(q + 1)));
    }
    // The ladder is ordered on this uniform distribution.
    EXPECT_LT(hist->at("p50").number, hist->at("p90").number);
    EXPECT_LT(hist->at("p90").number, hist->at("p95").number);
    EXPECT_LT(hist->at("p95").number, hist->at("p99").number);

    // CSV rows mirror the JSON fields.
    std::string csv = reg.toCsv();
    for (const char *row :
         {"core.issue_wait.p50,", "core.issue_wait.p90,",
          "core.issue_wait.p95,", "core.issue_wait.p99,"}) {
        SCOPED_TRACE(row);
        EXPECT_NE(csv.find(row), std::string::npos);
    }
}

TEST(Table, AlignsAndPads)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    t.addRow({"short"}); // padded with empty cell
    EXPECT_EQ(t.rows(), 3u);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("longer-name | 22"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

} // namespace
} // namespace crisp
