/**
 * @file
 * Unit tests for the DDR4 timing model: row-buffer behaviour, bank
 * parallelism, bus serialization and refresh windows.
 */

#include <gtest/gtest.h>

#include "dram/controller.h"

namespace crisp
{
namespace
{

/** Picks a quiet start cycle clear of the periodic refresh window. */
constexpr uint64_t kQuiet = 5000;

TEST(Ddr4Timing, LatencyOrdering)
{
    Ddr4Timing t;
    EXPECT_LT(t.rowHitLatency(), t.rowClosedLatency());
    EXPECT_LT(t.rowClosedLatency(), t.rowConflictLatency());
}

TEST(Dram, RowHitFasterThanConflict)
{
    Ddr4Timing t;
    DramController dram(t);
    // First access opens the row (closed-row latency).
    uint64_t first = dram.access(0x100000, kQuiet);
    EXPECT_EQ(first - kQuiet, t.rowClosedLatency());
    // Same row and same bank (bank bits are addr[9:6], so step by
    // 16 lines to stay in bank 0): row hit.
    uint64_t hit = dram.access(0x100000 + 16 * 64, first + 100);
    EXPECT_EQ(hit - (first + 100), t.rowHitLatency());
    // Different row, same bank: conflict.
    uint64_t far = 0x100000 + uint64_t(t.rowBytes) * t.numBanks;
    uint64_t conf = dram.access(far, hit + 100);
    EXPECT_EQ(conf - (hit + 100), t.rowConflictLatency());

    EXPECT_EQ(dram.stats().rowHits, 1u);
    EXPECT_EQ(dram.stats().rowConflicts, 1u);
    EXPECT_EQ(dram.stats().rowClosed, 1u);
}

TEST(Dram, BankParallelismBeatsSameBank)
{
    Ddr4Timing t;
    DramController a(t), b(t);
    uint64_t row_span = uint64_t(t.rowBytes) * t.numBanks;

    // Two concurrent requests to DIFFERENT banks.
    uint64_t d1 = a.access(0x000000, kQuiet);
    uint64_t d2 = a.access(0x000040ull + 64, kQuiet); // next bank
    uint64_t diff_banks = std::max(d1, d2);

    // Two concurrent requests to different rows of the SAME bank.
    uint64_t s1 = b.access(0x000000, kQuiet);
    uint64_t s2 = b.access(row_span, kQuiet);
    uint64_t same_bank = std::max(s1, s2);

    EXPECT_LT(diff_banks, same_bank);
}

TEST(Dram, BusSerializesBursts)
{
    Ddr4Timing t;
    DramController dram(t);
    // Many simultaneous requests: completions must be spaced by at
    // least the burst time on the shared data bus.
    std::vector<uint64_t> done;
    for (unsigned k = 0; k < 8; ++k)
        done.push_back(dram.access(uint64_t(k) * 64, kQuiet));
    std::sort(done.begin(), done.end());
    for (size_t k = 1; k < done.size(); ++k)
        EXPECT_GE(done[k] - done[k - 1], t.tBurst);
    EXPECT_GT(dram.stats().busWaitCycles, 0u);
}

TEST(Dram, RefreshWindowDelaysAccess)
{
    Ddr4Timing t;
    DramController dram(t);
    // An access landing inside the refresh window at the start of a
    // tREFI period waits for tRFC to elapse.
    uint64_t in_refresh = uint64_t(t.tRefi); // phase 0
    uint64_t done = dram.access(0x5000, in_refresh - t.tCtrl);
    EXPECT_GE(done - (in_refresh - t.tCtrl),
              t.tRfc + t.rowClosedLatency() - t.tCtrl);
}

TEST(Dram, StatsAverage)
{
    DramController dram;
    dram.access(0x0, kQuiet);
    dram.access(0x40, kQuiet + 1000);
    EXPECT_EQ(dram.stats().reads, 2u);
    EXPECT_GT(dram.stats().averageLatency(), 0.0);
}

TEST(Dram, ResetClearsState)
{
    Ddr4Timing t;
    DramController dram(t);
    dram.access(0x100000, kQuiet);
    dram.reset();
    EXPECT_EQ(dram.stats().reads, 0u);
    // Row closed again after reset.
    uint64_t done = dram.access(0x100040, kQuiet);
    EXPECT_EQ(done - kQuiet, t.rowClosedLatency());
}

} // namespace
} // namespace crisp
