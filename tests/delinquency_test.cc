/**
 * @file
 * Unit tests for the delinquency / branch-criticality selection
 * heuristics (§3.2, §3.4, §5.5): each criterion must gate.
 */

#include <gtest/gtest.h>

#include "core/delinquency.h"

namespace crisp
{
namespace
{

/** A profile with one load that passes every criterion. */
ProfileResult
goodProfile()
{
    ProfileResult prof;
    prof.totalOps = 100000;
    prof.totalLoads = 10000;
    prof.totalLlcMisses = 1000;
    LoadProfile lp;
    lp.exec = 1000;
    lp.l1Misses = 900;
    lp.llcMisses = 800;       // miss share 0.8, ratio 0.8
    lp.mlpSum = 1500;         // avg MLP 1.875
    lp.mlpSamples = 800;
    lp.strideHits = 10;       // strideability 0.01
    lp.deltaSamples = 999;
    prof.loads[7] = lp;
    return prof;
}

TEST(Delinquency, AcceptsQualifyingLoad)
{
    ProfileResult prof = goodProfile();
    CrispOptions opts;
    auto picked = selectDelinquentLoads(prof, opts);
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0], 7u);
}

TEST(Delinquency, MissShareThresholdGates)
{
    ProfileResult prof = goodProfile();
    prof.totalLlcMisses = 1000000; // share drops to 0.0008
    CrispOptions opts;              // T = 1%
    EXPECT_TRUE(selectDelinquentLoads(prof, opts).empty());
}

TEST(Delinquency, MissRatioGates)
{
    ProfileResult prof = goodProfile();
    prof.loads[7].exec = 100000; // ratio 0.008 < 20%
    prof.totalLoads = 200000;
    CrispOptions opts;
    EXPECT_TRUE(selectDelinquentLoads(prof, opts).empty());
}

TEST(Delinquency, MlpGates)
{
    ProfileResult prof = goodProfile();
    prof.loads[7].mlpSum = 800 * 8.0; // avg MLP 8 >= 5
    CrispOptions opts;
    EXPECT_TRUE(selectDelinquentLoads(prof, opts).empty());
}

TEST(Delinquency, StrideabilityGates)
{
    ProfileResult prof = goodProfile();
    prof.loads[7].strideHits = 980; // 0.98 regular
    CrispOptions opts;
    EXPECT_TRUE(selectDelinquentLoads(prof, opts).empty());
}

TEST(Delinquency, ExecShareGates)
{
    ProfileResult prof = goodProfile();
    prof.totalLoads = 100000000; // load share tiny
    CrispOptions opts;
    EXPECT_TRUE(selectDelinquentLoads(prof, opts).empty());
}

TEST(Delinquency, DisableSwitchGates)
{
    ProfileResult prof = goodProfile();
    CrispOptions opts;
    opts.enableLoadSlices = false;
    EXPECT_TRUE(selectDelinquentLoads(prof, opts).empty());
}

TEST(Delinquency, SortsByMissCountDescending)
{
    ProfileResult prof = goodProfile();
    LoadProfile second = prof.loads[7];
    second.llcMisses = 100; // fewer misses (share 0.1 > T)
    second.exec = 120;
    second.l1Misses = 110;
    prof.loads[9] = second;
    CrispOptions opts;
    auto picked = selectDelinquentLoads(prof, opts);
    ASSERT_EQ(picked.size(), 2u);
    EXPECT_EQ(picked[0], 7u);
    EXPECT_EQ(picked[1], 9u);
}

TEST(Branches, MispredictThresholdGates)
{
    ProfileResult prof;
    BranchProfile hard;
    hard.exec = 1000;
    hard.mispredicts = 400; // 40%
    BranchProfile easy;
    easy.exec = 1000;
    easy.mispredicts = 50;  // 5% < 15%
    prof.branches[1] = hard;
    prof.branches[2] = easy;
    CrispOptions opts;
    auto picked = selectCriticalBranches(prof, opts);
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0], 1u);
}

TEST(Branches, ExecShareGates)
{
    ProfileResult prof;
    BranchProfile rare;
    rare.exec = 1;
    rare.mispredicts = 1;
    BranchProfile common;
    common.exec = 1000000;
    common.mispredicts = 1000; // dilutes rare's share
    prof.branches[1] = rare;
    prof.branches[2] = common;
    CrispOptions opts;
    auto picked = selectCriticalBranches(prof, opts);
    EXPECT_TRUE(picked.empty()); // rare too cold, common too easy
}

TEST(Branches, DisableSwitchGates)
{
    ProfileResult prof;
    BranchProfile hard;
    hard.exec = 1000;
    hard.mispredicts = 500;
    prof.branches[1] = hard;
    CrispOptions opts;
    opts.enableBranchSlices = false;
    EXPECT_TRUE(selectCriticalBranches(prof, opts).empty());
}

TEST(Branches, EmptyProfile)
{
    ProfileResult prof;
    CrispOptions opts;
    EXPECT_TRUE(selectCriticalBranches(prof, opts).empty());
    EXPECT_TRUE(selectDelinquentLoads(prof, opts).empty());
}

} // namespace
} // namespace crisp
