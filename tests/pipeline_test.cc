/**
 * @file
 * End-to-end tests of the CRISP software pipeline (Fig 5 flow):
 * profiling, selection, slicing, band enforcement and tagging on the
 * motivating pointer-chase workload.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.h"
#include "sim/driver.h"
#include "workloads/workload.h"

namespace crisp
{
namespace
{

const WorkloadInfo &
chase()
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    EXPECT_NE(wl, nullptr);
    return *wl;
}

TEST(Pipeline, FindsTheDelinquentLoad)
{
    CrispPipeline pipe(chase(), CrispOptions{}, SimConfig::skylake(),
                       120'000, 120'000);
    const CrispAnalysis &a = pipe.analysis();
    ASSERT_GE(a.delinquentLoads.size(), 1u);
    EXPECT_FALSE(a.taggedStatics.empty());
    EXPECT_GT(a.avgLoadSliceSize, 2.0); // chain through the stack
    // Analysis is cached: same object on re-query.
    EXPECT_EQ(&pipe.analysis(), &a);
}

TEST(Pipeline, TaggedTraceCarriesCriticalOps)
{
    CrispPipeline pipe(chase(), CrispOptions{}, SimConfig::skylake(),
                       120'000, 120'000);
    Trace untagged = pipe.refTrace(false);
    Trace tagged = pipe.refTrace(true);
    EXPECT_EQ(untagged.size(), tagged.size());
    uint64_t crit = 0;
    for (const auto &op : tagged.ops)
        crit += op.critical;
    EXPECT_GT(crit, 0u);
    for (const auto &op : untagged.ops)
        EXPECT_FALSE(op.critical);
    // Same dynamic instruction sequence (sidx-wise).
    for (size_t i = 0; i < untagged.size(); ++i)
        ASSERT_EQ(untagged.ops[i].sidx, tagged.ops[i].sidx);
}

TEST(Pipeline, BandEnforcementRespectsCap)
{
    CrispOptions tight;
    tight.maxCriticalRatio = 0.02; // absurdly small cap
    CrispPipeline pipe(chase(), tight, SimConfig::skylake(),
                       120'000, 120'000);
    const CrispAnalysis &a = pipe.analysis();
    // The most important slice is always kept, but nothing beyond
    // the cap can be added on top of it.
    EXPECT_GT(a.taggedStatics.size(), 0u);
    CrispOptions loose;
    CrispPipeline pipe2(chase(), loose, SimConfig::skylake(),
                        120'000, 120'000);
    EXPECT_GE(pipe2.analysis().taggedStatics.size(),
              a.taggedStatics.size());
}

TEST(Pipeline, DisabledSlicingTagsNothing)
{
    CrispOptions off;
    off.enableLoadSlices = false;
    off.enableBranchSlices = false;
    CrispPipeline pipe(chase(), off, SimConfig::skylake(), 100'000,
                       100'000);
    EXPECT_TRUE(pipe.analysis().taggedStatics.empty());
    EXPECT_EQ(pipe.analysis().dynamicCriticalRatio, 0.0);
}

TEST(Pipeline, TagSummaryMatchesAnalysis)
{
    CrispPipeline pipe(chase(), CrispOptions{}, SimConfig::skylake(),
                       120'000, 120'000);
    TagSummary s = pipe.tagSummary();
    EXPECT_EQ(s.taggedStatics, pipe.analysis().taggedStatics.size());
    EXPECT_GE(s.dynamicOverhead(), 0.0);
    EXPECT_LT(s.dynamicOverhead(), 0.5);
}

TEST(Driver, EvaluateWorkloadProducesCoherentResults)
{
    EvalSizes sizes{100'000, 150'000};
    WorkloadEval ev =
        evaluateWorkload(chase(), SimConfig::skylake(),
                         CrispOptions{}, sizes, {"1K"});
    EXPECT_EQ(ev.name, "pointer_chase");
    EXPECT_GT(ev.ipcBaseline, 0.1);
    EXPECT_GT(ev.ipcCrisp, ev.ipcBaseline * 0.98);
    EXPECT_EQ(ev.ipcIbda.size(), 1u);
    EXPECT_GT(ev.crispSpeedup(), 1.0);
    EXPECT_GT(ev.ibdaSpeedup("1K"), 0.5);
    EXPECT_EQ(ev.ibdaSpeedup("nope"), 0.0);
    // The §5.2 confirmation metric: CRISP reduces ROB-head stalls.
    EXPECT_LE(ev.crispStats.robHeadStallCycles,
              ev.baseStats.robHeadStallCycles);
}

TEST(Driver, IbdaConfigMapping)
{
    SimConfig base = SimConfig::skylake();
    SimConfig c1 = ibdaConfig(base, "1K");
    EXPECT_TRUE(c1.enableIbda);
    EXPECT_EQ(c1.istEntries, 1024u);
    EXPECT_FALSE(c1.istInfinite);
    SimConfig c8 = ibdaConfig(base, "8K");
    EXPECT_EQ(c8.istEntries, 8192u);
    SimConfig c64 = ibdaConfig(base, "64K");
    EXPECT_EQ(c64.istEntries, 65536u);
    SimConfig cinf = ibdaConfig(base, "inf");
    EXPECT_TRUE(cinf.istInfinite);
}

TEST(Config, WindowVariantAndDescribe)
{
    SimConfig cfg = SimConfig::withWindow(144, 336);
    EXPECT_EQ(cfg.rsSize, 144u);
    EXPECT_EQ(cfg.robSize, 336u);
    EXPECT_NE(cfg.describe().find("ROB 336"), std::string::npos);
    SimConfig sk = SimConfig::skylake();
    EXPECT_EQ(sk.robSize, 224u);
    EXPECT_EQ(sk.rsSize, 96u);
    EXPECT_EQ(sk.width, 6u);
}

} // namespace
} // namespace crisp
