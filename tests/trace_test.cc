/**
 * @file
 * Unit tests for Trace utilities and binary trace I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "trace/trace_io.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"

namespace crisp
{
namespace
{

Trace
makeTrace()
{
    Assembler a;
    a.poke(0x4000, 11);
    a.movi(1, 0x4000);
    a.movi(2, 0);
    auto loop = a.label();
    a.bind(loop);
    a.ld(3, 1, 0);
    a.addi(2, 2, 1);
    a.slti(4, 2, 5);
    a.bne(4, 0, loop);
    a.halt();
    auto prog = std::make_shared<Program>(a.finish("roundtrip"));
    Interpreter interp(prog);
    return interp.run(1000);
}

TEST(Trace, StaticExecCounts)
{
    Trace t = makeTrace();
    auto counts = t.staticExecCounts();
    // movi executed once, loop body 5 times.
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[2], 5u); // ld
    EXPECT_EQ(counts[3], 5u); // addi
}

TEST(Trace, DynamicBytesSumInstSizes)
{
    Trace t = makeTrace();
    uint64_t expect = 0;
    for (const auto &op : t.ops)
        expect += op.instSize;
    EXPECT_EQ(t.dynamicBytes(), expect);
    EXPECT_GT(expect, t.size()); // every inst at least 1 byte
}

TEST(Trace, RestampAppliesNewSizesAndFlags)
{
    Trace t = makeTrace();
    Program prog = *t.program;
    prog.code[2].critical = true;
    prog.code[2].size += 1;
    prog.layout();
    uint64_t before = t.dynamicBytes();
    t.restampFromProgram(prog);
    EXPECT_EQ(t.dynamicBytes(), before + 5); // 5 executions of ld
    for (const auto &op : t.ops) {
        EXPECT_EQ(op.critical, op.sidx == 2);
        EXPECT_EQ(op.pc, prog.code[op.sidx].pc);
    }
    // nextPc consistency: sequential ops follow pc + size.
    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t.ops[i].isControl()) {
            EXPECT_EQ(t.ops[i].nextPc,
                      t.ops[i].pc + t.ops[i].instSize);
        }
    }
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    Trace t = makeTrace();
    const char *path = "trace_io_test.bin";
    ASSERT_TRUE(saveTrace(t, path));
    Trace back = loadTrace(path);
    std::remove(path);

    ASSERT_TRUE(back.program != nullptr);
    ASSERT_EQ(back.size(), t.size());
    EXPECT_EQ(back.program->name, "roundtrip");
    EXPECT_EQ(back.program->code.size(), t.program->code.size());
    EXPECT_EQ(back.program->dataInit, t.program->dataInit);
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back.ops[i].pc, t.ops[i].pc);
        EXPECT_EQ(back.ops[i].sidx, t.ops[i].sidx);
        EXPECT_EQ(back.ops[i].effAddr, t.ops[i].effAddr);
        EXPECT_EQ(back.ops[i].taken, t.ops[i].taken);
    }
    // The reloaded program lays out to the same PCs.
    EXPECT_EQ(back.program->indexOfPc(back.ops[0].pc), 0);
}

TEST(TraceIo, MissingFileYieldsEmptyTrace)
{
    Trace t = loadTrace("/nonexistent/path/trace.bin");
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.program, nullptr);
}

TEST(TraceIo, RejectsCorruptHeader)
{
    const char *path = "trace_io_corrupt.bin";
    std::FILE *f = std::fopen(path, "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a trace file at all";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    Trace t = loadTrace(path);
    std::remove(path);
    EXPECT_EQ(t.size(), 0u);
}

TEST(Program, CriticalCountTracksTags)
{
    Trace t = makeTrace();
    Program prog = *t.program;
    EXPECT_EQ(prog.criticalCount(), 0u);
    prog.code[0].critical = true;
    prog.code[4].critical = true;
    EXPECT_EQ(prog.criticalCount(), 2u);
}

} // namespace
} // namespace crisp
